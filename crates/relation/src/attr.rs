//! Attribute names and attribute sets.
//!
//! The paper builds preferences over "a set of attribute names with an
//! associated domain of values". [`Attr`] is an interned attribute name
//! (cheap to clone and compare); [`AttrSet`] is a sorted, deduplicated set
//! with the union/intersection/disjointness operations the preference
//! constructors need (`A1 ∪ A2` for Pareto/prioritised accumulation,
//! `range` disjointness for disjoint union, …).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Global interner so repeated attribute names share one allocation.
static INTERNER: Mutex<Option<HashSet<Arc<str>>>> = Mutex::new(None);

fn intern(name: &str) -> Arc<str> {
    let mut guard = INTERNER.lock();
    let set = guard.get_or_insert_with(HashSet::new);
    if let Some(existing) = set.get(name) {
        return Arc::clone(existing);
    }
    let arc: Arc<str> = Arc::from(name);
    set.insert(Arc::clone(&arc));
    arc
}

/// An attribute name. Equality and ordering are by string value;
/// construction interns the backing string so clones are pointer bumps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Create (or reuse) an attribute name.
    pub fn new(name: &str) -> Self {
        Attr(intern(name))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Shorthand constructor: `attr("price")`.
pub fn attr(name: &str) -> Attr {
    Attr::new(name)
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(&s)
    }
}

impl AsRef<str> for Attr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A sorted, duplicate-free set of attribute names.
///
/// The paper's `A = {A1, …, Ak}` where "the order of components within the
/// Cartesian product is considered irrelevant" — hence a canonical sorted
/// representation, so `{A1,A2} ∪ {A2,A3}` equals `{A1,A2,A3}` structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrSet(Box<[Attr]>);

impl AttrSet {
    /// The empty attribute set.
    pub fn empty() -> Self {
        AttrSet(Box::from([]))
    }

    /// Build from any iterator of names; sorts and deduplicates.
    pub fn new<I, T>(names: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Attr>,
    {
        let mut v: Vec<Attr> = names.into_iter().map(Into::into).collect();
        v.sort();
        v.dedup();
        AttrSet(v.into_boxed_slice())
    }

    /// Singleton set.
    pub fn single(a: impl Into<Attr>) -> Self {
        AttrSet(Box::from([a.into()]))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search over the sorted slice).
    pub fn contains(&self, a: &Attr) -> bool {
        self.0.binary_search(a).is_ok()
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> {
        self.0.iter()
    }

    /// Sorted slice view.
    pub fn as_slice(&self) -> &[Attr] {
        &self.0
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut v: Vec<Attr> = self.0.iter().chain(other.0.iter()).cloned().collect();
        v.sort();
        v.dedup();
        AttrSet(v.into_boxed_slice())
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &AttrSet) -> AttrSet {
        AttrSet(
            self.0
                .iter()
                .filter(|a| other.contains(a))
                .cloned()
                .collect(),
        )
    }

    /// `self − other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet(
            self.0
                .iter()
                .filter(|a| !other.contains(a))
                .cloned()
                .collect(),
        )
    }

    /// Do the two sets share no attribute?
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.0.iter().all(|a| !other.contains(a))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.0.iter().all(|a| other.contains(a))
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<I: IntoIterator<Item = Attr>>(iter: I) -> Self {
        AttrSet::new(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = &'a Attr;
    type IntoIter = std::slice::Iter<'a, Attr>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = attr("price");
        let b = attr("price");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn attrset_is_canonical() {
        let s1 = AttrSet::new(["b", "a", "b", "c"]);
        let s2 = AttrSet::new(["c", "b", "a"]);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        assert_eq!(s1.to_string(), "{a, b, c}");
    }

    #[test]
    fn union_matches_paper_example() {
        // dom({A1,A2} ∪ {A2,A3}) = dom(A1) × dom(A2) × dom(A3)  (Section 2)
        let b = AttrSet::new(["A1", "A2"]);
        let c = AttrSet::new(["A2", "A3"]);
        assert_eq!(b.union(&c), AttrSet::new(["A1", "A2", "A3"]));
    }

    #[test]
    fn set_operations() {
        let s1 = AttrSet::new(["a", "b", "c"]);
        let s2 = AttrSet::new(["b", "c", "d"]);
        assert_eq!(s1.intersect(&s2), AttrSet::new(["b", "c"]));
        assert_eq!(s1.difference(&s2), AttrSet::new(["a"]));
        assert!(!s1.is_disjoint(&s2));
        assert!(s1.is_disjoint(&AttrSet::new(["x", "y"])));
        assert!(AttrSet::new(["b"]).is_subset(&s1));
        assert!(!s1.is_subset(&s2));
        assert!(AttrSet::empty().is_subset(&s1));
        assert!(AttrSet::empty().is_disjoint(&AttrSet::empty()));
    }

    #[test]
    fn contains_uses_sorted_order() {
        let s = AttrSet::new(["make", "price", "color"]);
        assert!(s.contains(&attr("price")));
        assert!(!s.contains(&attr("mileage")));
    }
}
