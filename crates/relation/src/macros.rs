//! Literal relation construction, used pervasively in tests and examples.

/// Build a [`crate::Relation`] from a typed header and literal rows:
///
/// ```
/// use pref_relation::rel;
///
/// let r = rel! {
///     ("make": Str, "price": Int);
///     ("Audi", 40_000),
///     ("VW", 20_000),
/// };
/// assert_eq!(r.len(), 2);
/// ```
///
/// Panics on schema or row errors — it is a literal, so errors are bugs at
/// the call site.
#[macro_export]
macro_rules! rel {
    ( ( $( $name:literal : $dt:ident ),+ $(,)? ) ; $( ( $( $v:expr ),+ $(,)? ) ),* $(,)? ) => {{
        let schema = $crate::Schema::new(vec![
            $( ($name, $crate::DataType::$dt) ),+
        ]).expect("rel!: invalid schema literal");
        let rows = vec![
            $( $crate::Tuple::new(vec![ $( $crate::Value::from($v) ),+ ]) ),*
        ];
        $crate::Relation::from_rows(schema, rows).expect("rel!: invalid row literal")
    }};
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn rel_macro_single_column_single_row() {
        let r = rel! { ("color": Str); ("red",) };
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0)[0], Value::from("red"));
    }

    #[test]
    fn rel_macro_no_rows() {
        let r = rel! { ("a": Int, "b": Float); };
        assert!(r.is_empty());
        assert_eq!(r.schema().arity(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid row literal")]
    fn rel_macro_panics_on_bad_row() {
        let _ = rel! { ("a": Int); ("oops",) };
    }
}
