fn handle(line: &str) -> Reply {
    if line.len() > MAX_LINE {
        // preflint: allow(no-panic-in-connection-path) — fixture: length was validated by the framing layer
        unreachable!("framing layer rejects oversized lines");
    }
    Reply::ok("fine")
}
