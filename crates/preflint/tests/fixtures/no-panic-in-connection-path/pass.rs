fn handle(line: &str, sessions: &Registry) -> Reply {
    let Ok(id) = line.parse::<u64>() else {
        return Reply::err("bad session id");
    };
    match sessions.get(id) {
        Some(session) if !session.closed() => session.reply(),
        _ => Reply::err(format!("no live session {id}")),
    }
}

#[cfg(test)]
mod tests {
    // Test code may panic freely; the rule only covers the product path.
    #[test]
    fn parses() {
        let id: u64 = "7".parse().unwrap();
        assert_eq!(id, 7);
    }
}
