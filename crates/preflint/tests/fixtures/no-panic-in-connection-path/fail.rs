fn handle(line: &str, sessions: &Registry) -> Reply {
    let id: u64 = line.parse().unwrap();
    let session = sessions.get(id).expect("session must exist");
    if session.closed() {
        panic!("closed session {id}");
    }
    session.reply()
}
