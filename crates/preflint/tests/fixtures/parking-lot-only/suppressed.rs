// preflint: allow(parking-lot-only) — fixture: interop with an std-API callback
use std::sync::Mutex;

fn shared() -> Mutex<u64> {
    Mutex::new(0)
}
