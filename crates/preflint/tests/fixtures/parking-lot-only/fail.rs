use std::sync::{Arc, Mutex};

fn shared() -> Arc<Mutex<u64>> {
    Arc::new(Mutex::new(0))
}

fn inline_path() -> std::sync::RwLock<u64> {
    std::sync::RwLock::new(0)
}
