use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

fn shared() -> Arc<Mutex<u64>> {
    Arc::new(Mutex::new(0))
}

fn lock() -> RwLock<u64> {
    RwLock::new(0)
}

fn counter(c: &AtomicU64) -> u64 {
    // Relaxed: statistic only.
    c.load(Ordering::Relaxed)
}
