fn keys(generation: u64, fp: u64) -> MatrixKey {
    MatrixKey::Generation(fp, generation)
}
