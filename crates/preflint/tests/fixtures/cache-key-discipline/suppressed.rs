fn legacy_key(generation: u64, term_hash: u64) -> MatrixKey {
    // preflint: allow(cache-key-discipline) — fixture: term_hash IS the fingerprint, renamed
    MatrixKey::Generation(generation, term_hash)
}
