fn keys(generation: u64, pred: u64, fp: u64) -> (MatrixKey, MatrixKey) {
    (
        MatrixKey::Generation(generation, fp),
        MatrixKey::Derived(generation, pred, fp),
    )
}

fn from_compiled(generation: u64, c: &Compiled) -> MatrixKey {
    MatrixKey::Generation(generation, c.fingerprint())
}
