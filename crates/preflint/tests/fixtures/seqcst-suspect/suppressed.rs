use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn dekker_left(a: &AtomicBool, b: &AtomicBool) -> bool {
    // Store-load visibility between two flags genuinely needs the
    // total order here (Dekker-style handshake).
    // preflint: allow(seqcst-suspect) — fixture: store-load fence required across both flags
    a.store(true, Ordering::SeqCst);
    // preflint: allow(seqcst-suspect) — fixture: same handshake, load side
    !b.load(Ordering::SeqCst)
}
