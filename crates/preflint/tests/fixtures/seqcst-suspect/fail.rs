use std::sync::atomic::{AtomicBool, Ordering};

fn stop(flag: &AtomicBool) {
    // Stop flag for the accept loop.
    flag.store(true, Ordering::SeqCst)
}
