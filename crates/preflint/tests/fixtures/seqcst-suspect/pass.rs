use std::sync::atomic::{AtomicBool, Ordering};

fn stop(flag: &AtomicBool) {
    // Release pairs with the Acquire load in the accept loop.
    flag.store(true, Ordering::Release)
}
