fn warm_or_build(cache: &Cache, r: &Relation) -> Matrix {
    let shard = cache.shards[0].read();
    if let Some(m) = shard.get(r) {
        return m;
    }
    // BUG: the read guard `shard` is still live here.
    score_matrix_with(r, 4, 256)
}
