fn rebuild_under_lock(cache: &Cache, r: &Relation) -> Matrix {
    let shard = cache.shards[0].read();
    let _ = &shard;
    // preflint: allow(no-guard-across-build) — fixture: pretend single-threaded setup path
    score_matrix_with(r, 1, 0)
}
