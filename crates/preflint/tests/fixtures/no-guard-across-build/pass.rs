fn warm_or_build(cache: &Cache, r: &Relation) -> Matrix {
    {
        let shard = cache.shards[0].read();
        if let Some(m) = shard.get(r) {
            return m;
        }
    }
    // Guard scope closed: the build runs outside every lock.
    score_matrix_with(r, 4, 256)
}

fn explicit_drop(cache: &Cache, r: &Relation) -> Matrix {
    let shard = cache.shards[0].read();
    let warm = shard.get(r);
    drop(shard);
    match warm {
        Some(m) => m,
        None => score_matrix_with(r, 4, 256),
    }
}
