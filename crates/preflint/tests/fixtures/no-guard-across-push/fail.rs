fn notify_and_deliver(hub: &WatchHub, frame: &str) {
    let watches = hub.watches.lock();
    for w in watches.values() {
        // BUG: the registry guard `watches` is still live here — a
        // stalled client would wedge every mutation behind this lock.
        deliver_watch_frame(&w.sink, frame);
    }
}
