fn deliver_under_lock(hub: &WatchHub, sink: &WatchSink, frame: &str) {
    let watches = hub.watches.lock();
    let _ = &watches;
    // preflint: allow(no-guard-across-push) — fixture: pretend single-threaded shutdown drain
    deliver_watch_frame(sink, frame);
}
