fn notify_then_deliver(hub: &WatchHub, sink: &WatchSink, frame: &str) {
    {
        let watches = hub.watches.lock();
        let _ = watches.len();
    }
    // Registry guard scope closed: the delivery blocks only its sink.
    deliver_watch_frame(sink, frame);
}

fn explicit_drop(hub: &WatchHub, sink: &WatchSink, frame: &str) {
    let watches = hub.watches.lock();
    let live = watches.len();
    drop(watches);
    if live > 0 {
        deliver_watch_frame(sink, frame);
    }
}
