use std::sync::atomic::{AtomicU64, Ordering};

fn bump(c: &AtomicU64) -> u64 {
    // preflint: allow(ordering-documented) — fixture: rationale lives on the field doc
    c.fetch_add(1, Ordering::Relaxed)
}
