use std::sync::atomic::{AtomicU64, Ordering};

fn bump(c: &AtomicU64) -> u64 {
    // Relaxed: monotone statistic, nothing is published alongside it.
    c.fetch_add(1, Ordering::Relaxed)
}

fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::Release); // pairs with the Acquire load in poll()
}

fn compare(a: u32, b: u32) -> bool {
    // `cmp::Ordering` is not an atomic ordering; no comment needed.
    a.cmp(&b) == std::cmp::Ordering::Less
}
