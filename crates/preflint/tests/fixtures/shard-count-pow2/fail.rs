const CACHE_SHARDS: usize = 12;

fn shard_of(fp: u64) -> usize {
    (fp as usize) & (CACHE_SHARDS - 1)
}
