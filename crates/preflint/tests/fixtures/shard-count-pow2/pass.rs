const CACHE_SHARDS: usize = 16;
const SHARD_ROWS: usize = 32_768;
const UNRELATED_LIMIT: usize = 12;

fn shard_of(fp: u64) -> usize {
    (fp as usize) & (CACHE_SHARDS - 1)
}
