// preflint: allow(shard-count-pow2) — fixture: modulo addressing, not mask addressing
const LEGACY_SHARDS: usize = 12;

fn shard_of(fp: u64) -> usize {
    (fp as usize) % LEGACY_SHARDS
}
