// preflint: allow(cost-constant-documented) — fixture: rationale lives in the module doc
const COST_SCAN_FACTOR: f64 = 0.25;
