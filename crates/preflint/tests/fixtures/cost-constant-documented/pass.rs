/// One scalar comparison costs about a quarter of a full pairwise
/// dominance test — the unit every cost formula is denominated in.
const COST_SCAN_FACTOR: f64 = 0.25;

// Replan once the row count drifts past 2× (or below ½) of the planned
// snapshot: the cost ranking cannot flip on smaller drift.
pub(crate) const PLANNER_REPLAN_DRIFT: f64 = 2.0;

/// Constants outside the `COST_*` / `PLANNER_*` families are not cost
/// model and stay unflagged.
const STATS_CAPACITY: usize = 64;
