const COST_SCAN_FACTOR: f64 = 0.25;

pub(crate) const PLANNER_REPLAN_DRIFT: f64 = 2.0;
