//! Fixture-driven self-tests: every rule must demonstrably fire on its
//! `fail.rs` fixture, stay quiet on `pass.rs`, and be silenced by a
//! well-formed suppression in `suppressed.rs`. A final test runs the
//! real tree walk over this repository and requires it clean — `cargo
//! test` therefore enforces lint-cleanliness, not just CI's dedicated
//! preflint job.

use std::path::{Path, PathBuf};

use preflint::{check_source, check_tree, Diagnostic, ALL_RULES};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Check one fixture under a display path that activates path-scoped
/// rules (`no-panic-in-connection-path` only looks under
/// `crates/server/src`); using it for every rule is harmless since no
/// other rule is path-scoped.
fn check_fixture(rule: &str, which: &str) -> Vec<Diagnostic> {
    let path = fixture_dir().join(rule).join(which);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    check_source(&format!("crates/server/src/fixtures/{rule}/{which}"), &text)
}

#[test]
fn every_rule_has_a_complete_fixture_triple() {
    for rule in ALL_RULES {
        for which in ["fail.rs", "pass.rs", "suppressed.rs"] {
            let path = fixture_dir().join(rule).join(which);
            assert!(path.is_file(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn each_rule_fires_on_its_failing_fixture() {
    for rule in ALL_RULES {
        let diags = check_fixture(rule, "fail.rs");
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "rule `{rule}` did not fire on its fail fixture; got: {diags:?}"
        );
        // Diagnostics carry a real location and render rustc-style.
        let own = diags.iter().find(|d| d.rule == *rule).unwrap();
        assert!(own.line >= 1);
        assert!(own.to_string().contains(&format!("error[{rule}]")), "{own}");
    }
}

#[test]
fn each_rule_stays_quiet_on_its_passing_fixture() {
    for rule in ALL_RULES {
        let diags = check_fixture(rule, "pass.rs");
        assert!(
            diags.iter().all(|d| d.rule != *rule),
            "rule `{rule}` misfired on its pass fixture: {diags:?}"
        );
    }
}

#[test]
fn a_reasoned_allow_comment_silences_each_rule() {
    for rule in ALL_RULES {
        let diags = check_fixture(rule, "suppressed.rs");
        assert!(
            diags.is_empty(),
            "suppression for `{rule}` did not silence cleanly: {diags:?}"
        );
    }
}

#[test]
fn suppression_without_reason_does_not_silence() {
    // Take each fail fixture and bolt a reasonless allow onto the first
    // diagnostic's line: the original finding must survive, joined by a
    // missing-reason diagnostic.
    for rule in ALL_RULES {
        let path = fixture_dir().join(rule).join("fail.rs");
        let text = std::fs::read_to_string(&path).unwrap();
        let display = format!("crates/server/src/fixtures/{rule}/fail.rs");
        let line = check_source(&display, &text)
            .iter()
            .find(|d| d.rule == *rule)
            .map(|d| d.line)
            .unwrap() as usize;
        let patched: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == line {
                    format!("{l} // preflint: allow({rule})\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let diags = check_source(&display, &patched);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "reasonless allow must not silence `{rule}`: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("requires a reason")),
            "missing-reason diagnostic absent for `{rule}`: {diags:?}"
        );
    }
}

#[test]
fn the_repository_tree_is_clean() {
    // CARGO_MANIFEST_DIR = crates/preflint → repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("ROADMAP.md").is_file(),
        "unexpected repo layout at {}",
        root.display()
    );
    let (diags, checked) = check_tree(&root).expect("tree walk");
    assert!(
        checked > 50,
        "walk looks truncated: only {checked} files checked"
    );
    assert!(
        diags.is_empty(),
        "the tree must stay preflint-clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
