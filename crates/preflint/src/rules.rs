//! The lint rules. Each rule is a pattern over the lexed token stream;
//! all of them over-approximate on purpose (a lint that misses the bug
//! it was written for is worse than one that occasionally needs an
//! `allow` with a reason). `RULES.md` documents each rule's contract,
//! scope and escape hatch.

use crate::lexer::{Lexed, Tok, Token};
use crate::Diagnostic;

/// R1: no lock guard may be live across a score-matrix materialization.
pub const NO_GUARD_ACROSS_BUILD: &str = "no-guard-across-build";
/// R6: no lock guard may be live across a watch push delivery.
pub const NO_GUARD_ACROSS_PUSH: &str = "no-guard-across-push";
/// R2: product crates lock through the `parking_lot` shim only.
pub const PARKING_LOT_ONLY: &str = "parking-lot-only";
/// R3a: every atomic `Ordering::*` use carries a rationale comment.
pub const ORDERING_DOCUMENTED: &str = "ordering-documented";
/// R3b: `Ordering::SeqCst` is flagged unconditionally.
pub const SEQCST_SUSPECT: &str = "seqcst-suspect";
/// R4: no panicking call in the server's connection path.
pub const NO_PANIC_IN_CONNECTION_PATH: &str = "no-panic-in-connection-path";
/// R5a: `*SHARD*` constants feeding mask addressing are powers of two.
pub const SHARD_COUNT_POW2: &str = "shard-count-pow2";
/// R5b: `MatrixKey` constructions end in the term fingerprint.
pub const CACHE_KEY_DISCIPLINE: &str = "cache-key-discipline";
/// R7: every planner cost-model constant carries a rationale comment.
pub const COST_CONSTANT_DOCUMENTED: &str = "cost-constant-documented";

/// Run every rule over one lexed file.
pub fn run_all(display_path: &str, lx: &Lexed) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    no_guard_across_build(display_path, lx, &mut out);
    no_guard_across_push(display_path, lx, &mut out);
    parking_lot_only(display_path, lx, &mut out);
    ordering_documented(display_path, lx, &mut out);
    no_panic_in_connection_path(display_path, lx, &mut out);
    shard_count_pow2(display_path, lx, &mut out);
    cache_key_discipline(display_path, lx, &mut out);
    cost_constant_documented(display_path, lx, &mut out);
    out
}

/// Malformed suppressions are diagnostics themselves: an unknown rule
/// name or a missing reason must not silently disable anything.
pub fn check_suppressions(display_path: &str, lx: &Lexed) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in &lx.allows {
        if a.rule.is_empty() {
            out.push(Diagnostic {
                file: display_path.to_string(),
                line: a.line,
                rule: ORDERING_DOCUMENTED, // nearest stable id for reporting
                message: format!(
                    "suppression names unknown rule `{}` (known: {})",
                    a.raw_rule,
                    crate::ALL_RULES.join(", ")
                ),
            });
        } else if !a.has_reason {
            out.push(Diagnostic {
                file: display_path.to_string(),
                line: a.line,
                rule: a.rule,
                message: format!(
                    "suppression of `{}` requires a reason: `// preflint: allow({}) — <why>`",
                    a.rule, a.rule
                ),
            });
        }
    }
    out
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Does `toks[i..]` start with `.NAME(` for one of `names`?
fn is_method_call(toks: &[Token], i: usize, names: &[&str]) -> Option<&'static str> {
    if !is_punct(toks.get(i)?, '.') {
        return None;
    }
    let name = ident(toks.get(i + 1)?)?;
    if !is_punct(toks.get(i + 2)?, '(') {
        return None;
    }
    ["read", "write", "lock", "try_lock", "unwrap", "expect"]
        .iter()
        .find(|n| **n == name && names.contains(n))
        .copied()
}

// ---------------------------------------------------------------------
// R1 — no-guard-across-build, R6 — no-guard-across-push
// ---------------------------------------------------------------------

/// R1: a call to an identifier starting with `score_matrix` while a
/// guard is live is a violation — materialization must run outside
/// every lock (the PR 7 engine contract, checked at runtime by
/// `lock_diag` / `engine::build_scope`).
fn no_guard_across_build(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    no_guard_across_call(
        path,
        lx,
        out,
        "score_matrix",
        NO_GUARD_ACROSS_BUILD,
        "materializes",
        "builds must run outside every lock",
    );
}

/// R6: a call to an identifier starting with `deliver_watch` while a
/// guard is live is a violation — a push delivery can block on a slow
/// client socket, and the only thing it may block is that client's own
/// sink; holding the catalog or registry lock here would let one
/// stalled watcher wedge every session.
fn no_guard_across_push(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    no_guard_across_call(
        path,
        lx,
        out,
        "deliver_watch",
        NO_GUARD_ACROSS_PUSH,
        "writes to a connection sink",
        "push delivery must run outside every lock",
    );
}

/// The shared engine behind R1/R6: track `let [mut] NAME = ...;`
/// bindings whose initializer contains a `.read()` / `.write()` /
/// `.lock()` call — those are treated as lock guards. While any such
/// binding is in scope (its block has not closed and it has not been
/// explicitly `drop`ped), a call to an identifier starting with
/// `callee_prefix` is a violation.
fn no_guard_across_call(
    path: &str,
    lx: &Lexed,
    out: &mut Vec<Diagnostic>,
    callee_prefix: &str,
    rule: &'static str,
    verb: &str,
    contract: &str,
) {
    #[derive(Debug)]
    struct Guard {
        name: String,
        depth: i32,
        line: u32,
    }
    let toks = &lx.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;

    // Pending `let` state machine.
    #[derive(PartialEq)]
    enum LetState {
        None,
        /// Saw `let` (and maybe `mut`), waiting for the binding name.
        WantName,
        /// Saw the name, waiting for `=` (skipping a `: Type` annotation)
        /// or `;`.
        WantEq,
        /// Inside the initializer, scanning for guard-acquiring calls.
        InInit {
            is_guard: bool,
        },
    }
    let mut state = LetState::None;
    let mut pending_name = String::new();
    let mut pending_line = 0u32;
    let mut pending_depth = 0i32;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }

        // Guard-scope end by explicit drop: `drop(name)`.
        if ident(t) == Some("drop")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
            && toks.get(i + 3).is_some_and(|t| is_punct(t, ')'))
        {
            if let Some(name) = toks.get(i + 2).and_then(ident) {
                guards.retain(|g| g.name != name);
            }
        }

        // The guarded call itself.
        if let Some(name) = ident(t) {
            if name.starts_with(callee_prefix) && toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
            {
                for g in &guards {
                    out.push(Diagnostic {
                        file: path.to_string(),
                        line: t.line,
                        rule,
                        message: format!(
                            "`{name}` {verb} while guard `{}` (bound on line {}) \
                             may still be held — {contract}",
                            g.name, g.line
                        ),
                    });
                }
            }
        }

        // Advance the `let` state machine.
        match state {
            LetState::None => {
                if ident(t) == Some("let") {
                    state = LetState::WantName;
                    pending_depth = depth;
                    pending_line = t.line;
                }
            }
            LetState::WantName => match ident(t) {
                Some("mut") => {}
                Some(name) => {
                    pending_name = name.to_string();
                    state = LetState::WantEq;
                }
                None => state = LetState::None, // pattern binding; not tracked
            },
            LetState::WantEq => {
                if is_punct(t, '=') && depth == pending_depth {
                    state = LetState::InInit { is_guard: false };
                } else if is_punct(t, ';') && depth == pending_depth {
                    state = LetState::None;
                }
            }
            LetState::InInit { is_guard } => {
                let acquires = is_method_call(toks, i, &["read", "write", "lock"]).is_some();
                if is_punct(t, ';') && depth == pending_depth {
                    if is_guard {
                        guards.push(Guard {
                            name: std::mem::take(&mut pending_name),
                            depth: pending_depth,
                            line: pending_line,
                        });
                    }
                    state = LetState::None;
                } else if acquires {
                    state = LetState::InInit { is_guard: true };
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// R2 — parking-lot-only
// ---------------------------------------------------------------------

/// Flag `std::sync::Mutex` / `std::sync::RwLock` (as a path or inside a
/// `use std::sync::{...}` list). Product code must lock through the
/// vendored `parking_lot` shim so `lock_diag` can instrument every
/// acquisition; `std::sync` atomics, `Arc`, `Barrier` etc. stay fine.
fn parking_lot_only(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let banned = ["Mutex", "RwLock"];
    let mut i = 0;
    while i + 4 < toks.len() {
        let is_std_sync = ident(&toks[i]) == Some("std")
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && ident(&toks[i + 3]) == Some("sync");
        if !is_std_sync {
            i += 1;
            continue;
        }
        // `std::sync::X` or `std::sync::{...}`.
        let mut j = i + 4;
        if j + 1 < toks.len() && is_punct(&toks[j], ':') && is_punct(&toks[j + 1], ':') {
            j += 2;
            if let Some(t) = toks.get(j) {
                match &t.tok {
                    Tok::Ident(s) if banned.contains(&s.as_str()) => emit_r2(path, t.line, s, out),
                    Tok::Punct('{') => {
                        let mut depth = 1;
                        j += 1;
                        while j < toks.len() && depth > 0 {
                            match &toks[j].tok {
                                Tok::Punct('{') => depth += 1,
                                Tok::Punct('}') => depth -= 1,
                                Tok::Ident(s) if banned.contains(&s.as_str()) => {
                                    // `MutexGuard` etc. are idents of their
                                    // own; only exact names are flagged.
                                    emit_r2(path, toks[j].line, s, out);
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        i = j.max(i + 1);
    }
}

fn emit_r2(path: &str, line: u32, which: &str, out: &mut Vec<Diagnostic>) {
    out.push(Diagnostic {
        file: path.to_string(),
        line,
        rule: PARKING_LOT_ONLY,
        message: format!(
            "`std::sync::{which}` bypasses the instrumentable `parking_lot` shim — \
             use `parking_lot::{which}` so `lock_diag` can see the acquisition"
        ),
    });
}

// ---------------------------------------------------------------------
// R3 — ordering-documented / seqcst-suspect
// ---------------------------------------------------------------------

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Every atomic `Ordering::X` use needs a rationale comment on the same
/// line or within the two lines above (a comment above the statement
/// covers a multi-ordering call like `compare_exchange`). `SeqCst` is
/// additionally flagged outright: it is the "didn't think about it"
/// default, and on the warm path it costs a full fence for nothing.
fn ordering_documented(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let mut flagged: Vec<(u32, &'static str)> = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let is_ordering = ident(&toks[i]) == Some("Ordering")
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':');
        if !is_ordering {
            continue;
        }
        let Some(variant) = ident(&toks[i + 3]) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&variant) {
            continue; // `Ordering::Less` etc. — `std::cmp`, not atomics
        }
        let line = toks[i + 3].line;
        if variant == "SeqCst" && !flagged.contains(&(line, SEQCST_SUSPECT)) {
            flagged.push((line, SEQCST_SUSPECT));
            out.push(Diagnostic {
                file: path.to_string(),
                line,
                rule: SEQCST_SUSPECT,
                message: "`Ordering::SeqCst` is suspect: name the required ordering \
                          (usually Relaxed for counters, Acquire/Release for publication) \
                          or suppress with the reason SeqCst is truly needed"
                    .to_string(),
            });
        }
        if !lx.has_comment_near(line, 2) && !flagged.contains(&(line, ORDERING_DOCUMENTED)) {
            flagged.push((line, ORDERING_DOCUMENTED));
            out.push(Diagnostic {
                file: path.to_string(),
                line,
                rule: ORDERING_DOCUMENTED,
                message: format!(
                    "`Ordering::{variant}` has no rationale comment on this line or \
                     the two above — say why this ordering is sufficient"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R4 — no-panic-in-connection-path
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// In `crates/server/src` (outside `#[cfg(test)]` items), flag
/// `.unwrap()`, `.expect(` and panicking macros: a connection thread
/// must answer `ERR` or drop the connection, never die — a panic kills
/// the thread and silently hangs the client.
fn no_panic_in_connection_path(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    if !path.contains("crates/server/src") {
        return;
    }
    let toks = &lx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if lx.in_test_region(t.line) {
            continue;
        }
        if let Some(m) = is_method_call(toks, i, &["unwrap", "expect"]) {
            out.push(Diagnostic {
                file: path.to_string(),
                line: toks[i + 1].line,
                rule: NO_PANIC_IN_CONNECTION_PATH,
                message: format!(
                    "`.{m}()` can panic and kill this connection thread — \
                     reply `ERR` or disconnect cleanly instead"
                ),
            });
        }
        if let Some(name) = ident(t) {
            if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| is_punct(t, '!')) {
                out.push(Diagnostic {
                    file: path.to_string(),
                    line: t.line,
                    rule: NO_PANIC_IN_CONNECTION_PATH,
                    message: format!(
                        "`{name}!` kills the connection thread — \
                         reply `ERR` or disconnect cleanly instead"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R5a — shard-count-pow2
// ---------------------------------------------------------------------

/// `const NAME: _ = <literal>;` where NAME contains `SHARD` must be a
/// power of two: shard selection uses mask addressing (`fp & (N - 1)`),
/// which silently drops shards for any other value.
fn shard_count_pow2(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let mut i = 0;
    while i + 1 < toks.len() {
        if ident(&toks[i]) != Some("const") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(ident) else {
            i += 1;
            continue;
        };
        if !name.contains("SHARD") {
            i += 1;
            continue;
        }
        // Find `= <num> ;` — a single literal; computed values are out
        // of a lexer's reach and stay unchecked.
        let mut j = i + 2;
        while j < toks.len() && !is_punct(&toks[j], '=') && !is_punct(&toks[j], ';') {
            j += 1;
        }
        if j + 2 < toks.len() && is_punct(&toks[j], '=') && is_punct(&toks[j + 2], ';') {
            if let Tok::Num(raw) = &toks[j + 1].tok {
                match parse_int(raw) {
                    Some(v) if v.is_power_of_two() => {}
                    Some(v) => out.push(Diagnostic {
                        file: path.to_string(),
                        line: toks[j + 1].line,
                        rule: SHARD_COUNT_POW2,
                        message: format!(
                            "`{name} = {v}` is not a power of two — mask addressing \
                             (`x & ({name} - 1)`) would skip shards"
                        ),
                    }),
                    None => {}
                }
            }
        }
        i = j.max(i + 1);
    }
}

/// Parse an integer literal with `_` separators, radix prefix and type
/// suffix (`32_768`, `0xFFusize`).
fn parse_int(raw: &str) -> Option<u128> {
    let s: String = raw.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = match s.as_bytes() {
        [b'0', b'x', ..] => (16, &s[2..]),
        [b'0', b'o', ..] => (8, &s[2..]),
        [b'0', b'b', ..] => (2, &s[2..]),
        _ => (10, s.as_str()),
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

// ---------------------------------------------------------------------
// R5b — cache-key-discipline
// ---------------------------------------------------------------------

/// Every `MatrixKey::Variant(...)` construction (and pattern) must end
/// in the term fingerprint — `fp`, or something named `*fingerprint*`.
/// The cache shards by `key.fingerprint()`; a key whose last field is
/// anything else would be filed in one shard and probed in another.
fn cache_key_discipline(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    let mut i = 0;
    while i + 4 < toks.len() {
        let is_key = ident(&toks[i]) == Some("MatrixKey")
            && is_punct(&toks[i + 1], ':')
            && is_punct(&toks[i + 2], ':')
            && ident(&toks[i + 3]).is_some()
            && is_punct(&toks[i + 4], '(');
        if !is_key {
            i += 1;
            continue;
        }
        let variant = ident(&toks[i + 3]).unwrap_or_default().to_string();
        let line = toks[i + 4].line;
        // Collect the last top-level argument's tokens.
        let mut j = i + 5;
        let mut depth = 1i32;
        let mut last_arg: Vec<&Token> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                    depth += 1;
                    last_arg.push(&toks[j]);
                }
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth -= 1;
                    if depth > 0 {
                        last_arg.push(&toks[j]);
                    }
                }
                Tok::Punct(',') if depth == 1 => last_arg.clear(),
                _ => last_arg.push(&toks[j]),
            }
            j += 1;
        }
        let fingerprint_last = last_arg.iter().any(|t| {
            ident(t).is_some_and(|s| s == "fp" || s.to_ascii_lowercase().contains("fingerprint"))
        });
        if !fingerprint_last {
            out.push(Diagnostic {
                file: path.to_string(),
                line,
                rule: CACHE_KEY_DISCIPLINE,
                message: format!(
                    "`MatrixKey::{variant}` does not end in the term fingerprint \
                     (`fp` / `*fingerprint*`) — the cache shards by the key's \
                     final field, so every key kind must put the fingerprint last"
                ),
            });
        }
        i = j;
    }
}

// ---------------------------------------------------------------------
// R7 — cost-constant-documented
// ---------------------------------------------------------------------

/// `const COST_*` / `const PLANNER_*` declarations must carry a
/// rationale comment on the same line or within the two lines above.
/// These constants *are* the planner's cost model — an undocumented
/// magic number here silently re-ranks every algorithm choice, and the
/// calibration argument (why ¼ of a dominance test, why this drift
/// threshold) lives nowhere else.
fn cost_constant_documented(path: &str, lx: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lx.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if ident(&toks[i]) != Some("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(ident) else {
            continue;
        };
        if !(name.starts_with("COST_") || name.starts_with("PLANNER_")) {
            continue;
        }
        let line = toks[i + 1].line;
        if !lx.has_comment_near(line, 2) {
            out.push(Diagnostic {
                file: path.to_string(),
                line,
                rule: COST_CONSTANT_DOCUMENTED,
                message: format!(
                    "cost-model constant `{name}` has no rationale comment on this \
                     line or the two above — document the unit and the calibration \
                     argument behind the value"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        crate::check_source(path, src)
    }

    #[test]
    fn r1_fires_on_guard_held_across_build() {
        let src = "fn f() { let g = cache.read(); let m = score_matrix_with(r, t, s); }\n";
        let d = check("crates/q/src/e.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, NO_GUARD_ACROSS_BUILD);
    }

    #[test]
    fn r1_respects_scopes_and_drop() {
        let scoped = "fn f() { { let g = cache.read(); } let m = score_matrix_with(r); }\n";
        assert!(check("crates/q/src/e.rs", scoped).is_empty());
        let dropped = "fn f() { let g = cache.read(); drop(g); let m = score_matrix_with(r); }\n";
        assert!(check("crates/q/src/e.rs", dropped).is_empty());
        let after = "fn f() { let m = score_matrix_with(r); let g = cache.read(); }\n";
        assert!(check("crates/q/src/e.rs", after).is_empty());
    }

    #[test]
    fn r6_fires_on_guard_held_across_push_delivery() {
        let src = "fn f() { let g = hub.watches.lock(); deliver_watch_frame(&s, &fr); }\n";
        let d = check("crates/server/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, NO_GUARD_ACROSS_PUSH);

        let clean = "fn f() { { let g = hub.watches.lock(); } deliver_watch_frame(&s, &fr); }\n";
        assert!(check("crates/server/src/x.rs", clean).is_empty());
        // Other callee names under a guard stay legal — the rule is
        // about deliveries, not the registry bookkeeping around them.
        let other = "fn f() { let g = hub.watches.lock(); enqueue(&s, &fr); }\n";
        assert!(check("crates/server/src/x.rs", other).is_empty());
    }

    #[test]
    fn r2_fires_on_std_sync_locks_only() {
        let d = check("crates/s/src/a.rs", "use std::sync::{Arc, Mutex};\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, PARKING_LOT_ONLY);
        assert!(check("crates/s/src/a.rs", "use std::sync::Arc;\n").is_empty());
        assert!(check("crates/s/src/a.rs", "use parking_lot::RwLock;\n").is_empty());
        let path = check("crates/s/src/a.rs", "let l = std::sync::RwLock::new(1);\n");
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn r3_requires_rationale_and_flags_seqcst() {
        let bare = "fn f() { x.load(Ordering::Relaxed); }\n";
        let d = check("crates/s/src/a.rs", bare);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, ORDERING_DOCUMENTED);

        let commented =
            "// monotone counter; no ordering needed\nfn f() { x.load(Ordering::Relaxed); }\n";
        assert!(check("crates/s/src/a.rs", commented).is_empty());

        let seq = "// fully fenced on purpose\nfn f() { x.load(Ordering::SeqCst); }\n";
        let d = check("crates/s/src/a.rs", seq);
        assert_eq!(d.len(), 1, "SeqCst stays suspect even with a comment");
        assert_eq!(d[0].rule, SEQCST_SUSPECT);

        let cmp = "fn f() { if a.cmp(b) == Ordering::Less {} }\n";
        assert!(
            check("crates/s/src/a.rs", cmp).is_empty(),
            "cmp is not atomics"
        );
    }

    #[test]
    fn r4_scopes_to_server_src_and_skips_tests() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(check("crates/server/src/session.rs", src).len(), 1);
        assert!(check("crates/query/src/engine.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); panic!(\"no\"); } }\n";
        assert!(check("crates/server/src/session.rs", test_mod).is_empty());
        let mac = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(check("crates/server/src/server.rs", mac).len(), 1);
    }

    #[test]
    fn r5_pow2_and_key_discipline() {
        assert!(check("a.rs", "const CACHE_SHARDS: usize = 16;\n").is_empty());
        let d = check("a.rs", "const CACHE_SHARDS: usize = 12;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, SHARD_COUNT_POW2);

        assert!(check("a.rs", "let k = MatrixKey::Generation(g, fp);\n").is_empty());
        assert!(check(
            "a.rs",
            "let k = MatrixKey::Derived(g, p, c.fingerprint());\n"
        )
        .is_empty());
        let d = check("a.rs", "let k = MatrixKey::Generation(fp, gen);\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, CACHE_KEY_DISCIPLINE);
    }

    #[test]
    fn r7_requires_rationale_on_cost_constants() {
        let bare = "const COST_SCAN_FACTOR: f64 = 0.25;\n";
        let d = check("crates/query/src/plan.rs", bare);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, COST_CONSTANT_DOCUMENTED);

        let bare2 = "pub(crate) const PLANNER_REPLAN_DRIFT: f64 = 2.0;\n";
        let d = check("crates/query/src/plan.rs", bare2);
        assert_eq!(d.len(), 1, "{d:?}");

        let commented = "/// A scalar compare costs about a quarter dominance test.\n\
                         const COST_SCAN_FACTOR: f64 = 0.25;\n";
        assert!(check("crates/query/src/plan.rs", commented).is_empty());

        // Other constants are out of scope.
        let other = "const STATS_CAPACITY: usize = 64;\n";
        assert!(check("crates/query/src/plan.rs", other).is_empty());
    }

    #[test]
    fn malformed_suppressions_are_diagnostics() {
        let unknown = "// preflint: allow(not-a-rule) — whatever\n";
        let d = check("a.rs", unknown);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));

        let missing = "x.load(Ordering::SeqCst); // preflint: allow(seqcst-suspect)\n";
        let d = check("a.rs", missing);
        assert!(
            d.iter().any(|d| d.message.contains("requires a reason")),
            "{d:?}"
        );
    }

    #[test]
    fn parse_int_handles_radix_suffix_and_separators() {
        assert_eq!(parse_int("32_768"), Some(32_768));
        assert_eq!(parse_int("0xFFusize"), Some(255));
        assert_eq!(parse_int("16"), Some(16));
        assert_eq!(parse_int("0b1010"), Some(10));
    }
}
