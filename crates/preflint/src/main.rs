//! CLI: `cargo run -p preflint -- --check <path>`.
//!
//! Exits 0 on a clean tree, 1 when any diagnostic survives suppression,
//! 2 on usage or I/O errors. Output is `file:line: error[rule]: message`
//! per finding plus a one-line summary, so CI logs read like rustc's.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                if i + 1 >= args.len() {
                    eprintln!("preflint: --check requires a path");
                    return usage();
                }
                root = Some(args[i + 1].clone());
                i += 2;
            }
            "--rules" => {
                for r in preflint::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("preflint: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(root) = root else {
        return usage();
    };

    match preflint::check_tree(Path::new(&root)) {
        Ok((diags, checked)) => {
            let clean = preflint::report(&diags, checked, &mut std::io::stdout());
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("preflint: cannot walk `{root}`: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: preflint --check <path>   lint every product .rs file under <path>\n\
         \x20      preflint --rules         list known rule ids\n\
         suppress a finding with `// preflint: allow(<rule>) — <reason>`"
    );
    ExitCode::from(2)
}
