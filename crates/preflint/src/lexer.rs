//! A hand-rolled, dependency-free Rust lexer — just enough fidelity for
//! the lint rules: identifiers, numbers, punctuation, with comments,
//! string/char literals and lifetimes recognized and set aside so rule
//! patterns can never fire inside a string or a comment.
//!
//! The lexer also extracts the two side channels the rules consume:
//! which lines carry comments (the `ordering-documented` rationale
//! check) and every `preflint: allow(rule) — reason` suppression.

use std::collections::BTreeSet;

/// One lexed token kind. String/char literal *content* is deliberately
/// dropped: no rule may match inside a literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Numeric literal, verbatim (suffix and `_` separators included).
    Num(String),
    /// Any string, raw-string, byte-string or char literal.
    Lit,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// One `preflint: allow(...)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment appears on.
    pub line: u32,
    /// The rule id inside `allow(...)`, static when known.
    pub rule: &'static str,
    /// The verbatim rule text (for unknown-rule reporting).
    pub raw_rule: String,
    /// Whether a non-trivial reason follows the `allow(...)`.
    pub has_reason: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Every line that contains (part of) a comment.
    pub comment_lines: BTreeSet<u32>,
    /// All suppression comments, in order.
    pub allows: Vec<Allow>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl Lexed {
    /// Is `line` inside a `#[cfg(test)]` region?
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Does `line` (or one of the `above` lines directly over it) carry
    /// a comment? The rationale-comment check for atomic orderings.
    pub fn has_comment_near(&self, line: u32, above: u32) -> bool {
        (line.saturating_sub(above)..=line).any(|l| self.comment_lines.contains(&l))
    }
}

/// Lex `text` into tokens plus the comment/suppression side channels.
pub fn lex(text: &str) -> Lexed {
    let mut lx = Lexed::default();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let comment: String = bytes[start..i].iter().collect();
                lx.comment_lines.insert(line);
                // Doc comments (`///`, `//!`) never carry directives —
                // they document the suppression syntax without using it.
                if !comment.starts_with("///") && !comment.starts_with("//!") {
                    parse_allow(&comment, line, &mut lx.allows);
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment; Rust block comments nest.
                lx.comment_lines.insert(line);
                let is_doc = i + 2 < n && (bytes[i + 2] == '*' || bytes[i + 2] == '!');
                let mut depth = 1;
                i += 2;
                let start = i;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        lx.comment_lines.insert(line);
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let comment: String = bytes[start..i.min(n)].iter().collect();
                if !is_doc {
                    parse_allow(&comment, line, &mut lx.allows);
                }
            }
            '"' => {
                lx.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i = skip_string(&bytes, i, &mut line);
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                lx.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
                i = skip_raw_or_byte(&bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let mut j = i + 1;
                if j < n && bytes[j] == '\\' {
                    // Escaped char literal: skip to closing quote.
                    lx.tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                    j += 2; // the backslash and the escaped char
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = (j + 1).min(n);
                } else {
                    let ident_end = ident_run(&bytes, j);
                    if ident_end < n && bytes[ident_end] == '\'' && ident_end == j + 1 {
                        // Exactly one char then a quote: 'x'.
                        lx.tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        i = ident_end + 1;
                    } else if ident_end > j {
                        lx.tokens.push(Token {
                            tok: Tok::Lifetime,
                            line,
                        });
                        i = ident_end;
                    } else {
                        // Stray quote (e.g. inside a macro): treat as punct.
                        lx.tokens.push(Token {
                            tok: Tok::Punct('\''),
                            line,
                        });
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                // One fractional part, but never a `..` range.
                if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                }
                lx.tokens.push(Token {
                    tok: Tok::Num(bytes[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                i = ident_run(&bytes, i);
                lx.tokens.push(Token {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            c => {
                lx.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    lx.test_regions = find_test_regions(&lx.tokens);
    lx
}

/// End index of the identifier run starting at `i`.
fn ident_run(bytes: &[char], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
        i += 1;
    }
    i
}

/// Is `bytes[i..]` the start of a raw/byte string (`r"`, `r#"`, `b"`,
/// `br"`, `br#"`)? Plain identifiers starting with r/b fall through.
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j < n && bytes[j] == '"' {
            return true;
        }
    }
    if j < n && bytes[j] == 'r' {
        j += 1;
        while j < n && bytes[j] == '#' {
            j += 1;
        }
        return j < n && bytes[j] == '"';
    }
    false
}

/// Skip a raw or byte string starting at `i`; returns the index after it.
fn skip_raw_or_byte(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    if bytes[i] == 'b' {
        i += 1;
    }
    if i < n && bytes[i] == 'r' {
        i += 1;
        let mut hashes = 0;
        while i < n && bytes[i] == '#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < n {
            if bytes[i] == '\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == '"' {
                let mut k = 0;
                while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        n
    } else {
        // b"..." — an ordinary escaped string after the prefix.
        skip_string(bytes, i, line)
    }
}

/// Skip an escaped `"..."` string starting at the opening quote.
fn skip_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    i += 1;
    while i < n {
        match bytes[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Extract a `preflint: allow(rule) — reason` suppression from a
/// comment's text, if present.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let Some(at) = comment.find("preflint:") else {
        return;
    };
    let rest = comment[at + "preflint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let raw_rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
        .trim();
    let rule = crate::ALL_RULES
        .iter()
        .find(|r| **r == raw_rule)
        .copied()
        .unwrap_or("");
    out.push(Allow {
        line,
        rule,
        raw_rule,
        has_reason: reason.chars().count() >= 3,
    });
}

/// Locate `#[cfg(test)]` items: the attribute, then everything up to the
/// matching close brace of the item that follows.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = matches!(&tokens[i].tok, Tok::Punct('#'))
            && matches!(&tokens[i + 1].tok, Tok::Punct('['))
            && matches!(&tokens[i + 2].tok, Tok::Ident(s) if s == "cfg")
            && matches!(&tokens[i + 3].tok, Tok::Punct('('))
            && matches!(&tokens[i + 4].tok, Tok::Ident(s) if s == "test")
            && matches!(&tokens[i + 5].tok, Tok::Punct(')'))
            && matches!(&tokens[i + 6].tok, Tok::Punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip to the item's opening brace, then to its matching close.
        let mut j = i + 7;
        while j < tokens.len() && !matches!(tokens[j].tok, Tok::Punct('{')) {
            j += 1;
        }
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_lifetimes_do_not_produce_idents() {
        let lx = lex(r#"fn f<'a>(x: &'a str) { let s = "score_matrix .read()"; } // .write()"#);
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(!idents.contains(&"score_matrix"));
        assert!(!idents.contains(&"read"));
        assert!(!idents.contains(&"write"));
        assert!(idents.contains(&"let"));
        assert!(lx.comment_lines.contains(&1));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count(),
            2
        );
    }

    #[test]
    fn raw_strings_and_char_literals_are_opaque() {
        let src = "let a = r#\"x.read()\"#; let c = 'r'; let nl = '\\n';";
        let lx = lex(src);
        assert!(!lx
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "read")));
        assert_eq!(lx.tokens.iter().filter(|t| t.tok == Tok::Lit).count(), 3);
    }

    #[test]
    fn allow_comments_parse_rule_and_reason() {
        let lx = lex("// preflint: allow(parking-lot-only) — the shim itself\nlet x = 1;\n// preflint: allow(seqcst-suspect)\n");
        assert_eq!(lx.allows.len(), 2);
        assert_eq!(lx.allows[0].rule, crate::rules::PARKING_LOT_ONLY);
        assert!(lx.allows[0].has_reason);
        assert!(!lx.allows[1].has_reason, "reason is mandatory");

        let doc = lex("/// Example: `// preflint: allow(parking-lot-only) — why`\n//! preflint: allow(seqcst-suspect) — also a doc\nfn f() {}\n");
        assert!(doc.allows.is_empty(), "doc comments never carry directives");
    }

    #[test]
    fn cfg_test_regions_span_the_item() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lx = lex(src);
        assert_eq!(lx.test_regions, vec![(2, 5)]);
        assert!(lx.in_test_region(4));
        assert!(!lx.in_test_region(6));
    }

    #[test]
    fn numbers_lex_with_suffix_and_separators() {
        let lx = lex("const N: usize = 32_768; let f = 0.5; let h = 0xFFusize;");
        let nums: Vec<&str> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["32_768", "0.5", "0xFFusize"]);
    }
}
