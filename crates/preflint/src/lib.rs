//! `preflint` — the project's own static-analysis pass.
//!
//! Kießling's BMO semantics make a winnow result a pure function of
//! `(preference, relation)`, so the concurrent server is only correct if
//! locking stays *invisible*: a warm hit takes exactly one cache-shard
//! read lock, matrix builds run outside the engine's cache locks, and
//! statistics are lock-free. Those rules used to live in doc comments;
//! this crate machine-checks them on every CI run.
//!
//! The checker is deliberately dependency-free (no `syn`): a hand-rolled
//! [`lexer`] tokenizes each source file — comments, strings, lifetimes
//! and raw strings handled — and each rule in [`rules`] pattern-matches
//! the token stream. That makes the rules *heuristic by construction*:
//! they over-approximate (a binding whose initializer contains `.read()`
//! is treated as a lock guard even if it is really a query result), and
//! every rule can be silenced at a specific site with
//!
//! ```text
//! // preflint: allow(<rule>) — <reason>
//! ```
//!
//! on the offending line or the line directly above. The reason is
//! mandatory: a suppression without one is itself a diagnostic.
//!
//! Enforced rules (see `RULES.md` for the full contract):
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `no-guard-across-build`        | no lock guard live across a `score_matrix*` materialization call |
//! | `no-guard-across-push`         | no lock guard live across a `deliver_watch*` push delivery — a stalled watcher may block only its own sink |
//! | `parking-lot-only`             | product crates lock through the instrumentable `parking_lot` shim, never `std::sync::{Mutex,RwLock}` |
//! | `ordering-documented`          | every atomic `Ordering::*` use carries a rationale comment |
//! | `seqcst-suspect`               | `Ordering::SeqCst` needs an explicit suppression (it is almost never what the code means) |
//! | `no-panic-in-connection-path`  | no `unwrap`/`expect`/`panic!` in `crates/server/src` non-test code |
//! | `shard-count-pow2`             | `*SHARD*` consts that feed mask addressing are literal powers of two |
//! | `cache-key-discipline`         | every `MatrixKey` construction ends in the term fingerprint (the shard selector) |

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: a broken rule at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as walked (relative to the checked root).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule id (kebab-case, the same name `allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Every rule id the checker knows, in report order.
pub const ALL_RULES: &[&str] = &[
    rules::NO_GUARD_ACROSS_BUILD,
    rules::NO_GUARD_ACROSS_PUSH,
    rules::PARKING_LOT_ONLY,
    rules::ORDERING_DOCUMENTED,
    rules::SEQCST_SUSPECT,
    rules::NO_PANIC_IN_CONNECTION_PATH,
    rules::SHARD_COUNT_POW2,
    rules::CACHE_KEY_DISCIPLINE,
    rules::COST_CONSTANT_DOCUMENTED,
];

/// Check one source text. `display_path` is used both for reporting and
/// for rule scoping (`no-panic-in-connection-path` only applies under
/// `crates/server/src`). Suppressions are already applied.
pub fn check_source(display_path: &str, text: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(text);
    let mut diags = rules::run_all(display_path, &lexed);
    diags.extend(rules::check_suppressions(display_path, &lexed));
    apply_suppressions(&lexed, &mut diags);
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags.dedup();
    diags
}

/// Drop diagnostics covered by a well-formed `preflint: allow(rule)`
/// comment on the same line or the line directly above.
fn apply_suppressions(lexed: &lexer::Lexed, diags: &mut Vec<Diagnostic>) {
    diags.retain(|d| {
        !lexed
            .allows
            .iter()
            .any(|a| a.rule == d.rule && a.has_reason && (a.line == d.line || a.line + 1 == d.line))
    });
}

/// Walk `root` and check every product `.rs` file. Skipped subtrees:
/// `target/` (build output), `vendor/` (the shims legitimately wrap
/// `std::sync` — they are what `parking-lot-only` points product code
/// at), `.git/`, and any `fixtures/` directory (the self-test corpus
/// contains deliberate violations).
pub fn check_tree(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let checked = files.len();
    let mut diags = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(root.join(&path))?;
        let display = path.to_string_lossy().replace('\\', "/");
        diags.extend(check_source(&display, &text));
    }
    Ok((diags, checked))
}

const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|s| *s == name) || name.starts_with('.') {
                continue;
            }
            collect_sources(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Render a report: diagnostics grouped in file/line order plus a
/// one-line summary. Returns `true` when the tree is clean.
pub fn report(diags: &[Diagnostic], checked_files: usize, out: &mut impl std::io::Write) -> bool {
    let mut by_file: Vec<&Diagnostic> = diags.iter().collect();
    by_file.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    for d in &by_file {
        let _ = writeln!(out, "{d}");
    }
    let files_hit: BTreeSet<&str> = diags.iter().map(|d| d.file.as_str()).collect();
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "preflint: clean — {checked_files} file(s), {} rule(s)",
            ALL_RULES.len()
        );
        true
    } else {
        let _ = writeln!(
            out,
            "preflint: {} issue(s) in {} file(s) ({checked_files} checked)",
            diags.len(),
            files_hit.len()
        );
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_reports_clean() {
        let diags = check_source("crates/x/src/lib.rs", "fn main() {}\n");
        assert!(diags.is_empty(), "{diags:?}");
        let mut buf = Vec::new();
        assert!(report(&diags, 1, &mut buf));
        assert!(String::from_utf8(buf).unwrap().contains("clean"));
    }

    #[test]
    fn diagnostics_render_with_location_and_rule() {
        let src = "use std::sync::Mutex;\n";
        let diags = check_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        let line = diags[0].to_string();
        assert!(
            line.starts_with("crates/x/src/lib.rs:1: error[parking-lot-only]"),
            "{line}"
        );
    }

    #[test]
    fn suppression_covers_same_line_and_next_line() {
        let same = "use std::sync::Mutex; // preflint: allow(parking-lot-only) — fixture\n";
        assert!(check_source("crates/x/src/lib.rs", same).is_empty());
        let above = "// preflint: allow(parking-lot-only) — fixture\nuse std::sync::Mutex;\n";
        assert!(check_source("crates/x/src/lib.rs", above).is_empty());
        let far = "// preflint: allow(parking-lot-only) — fixture\n\nuse std::sync::Mutex;\n";
        assert_eq!(check_source("crates/x/src/lib.rs", far).len(), 1);
    }
}
