//! Synthetic multi-dimensional tables in the three correlation classes of
//! the skyline literature (\[BKS01\]): independent, correlated and
//! anti-correlated dimensions.
//!
//! Correlated data has tiny Pareto-optimal sets (one point tends to win
//! everywhere); anti-correlated data has huge ones (every gain on one
//! dimension costs another) — the knob behind the X1/X3 experiments.

use pref_relation::{DataType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Correlation classes of \[BKS01\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Dimensions drawn independently, uniform in [0, 1).
    Independent,
    /// Dimensions clustered around a common per-row level.
    Correlated,
    /// Dimensions trading off against each other around a constant sum.
    Anticorrelated,
}

impl Distribution {
    /// All three classes, for sweeps.
    pub fn all() -> [Distribution; 3] {
        [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::Anticorrelated => "anti-correlated",
        }
    }
}

/// Standard normal via Box–Muller (avoids a distribution-crate
/// dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generate an `n × d` table of Float columns `d0 … d{d-1}` in [0, 1).
pub fn table(n: usize, d: usize, dist: Distribution, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new((0..d).map(|i| (format!("d{i}"), DataType::Float)))
        .expect("generated column names are unique");
    let mut r = Relation::empty(schema);
    for _ in 0..n {
        let row = vector(&mut rng, d, dist);
        r.push_values(row.into_iter().map(Value::from).collect())
            .expect("generated rows match schema");
    }
    r
}

fn vector(rng: &mut StdRng, d: usize, dist: Distribution) -> Vec<f64> {
    match dist {
        Distribution::Independent => (0..d).map(|_| rng.random_range(0.0..1.0)).collect(),
        Distribution::Correlated => {
            // A per-row quality level with small per-dimension jitter.
            let level: f64 = rng.random_range(0.0..1.0);
            (0..d)
                .map(|_| (level + gaussian(rng) * 0.05).clamp(0.0, 1.0))
                .collect()
        }
        Distribution::Anticorrelated => {
            // Rescale a uniform vector to a common per-row sum so that a
            // high coordinate forces low ones elsewhere.
            let target = ((0.5 + gaussian(rng) * 0.05) * d as f64).max(1e-9);
            let raw: Vec<f64> = (0..d).map(|_| rng.random_range(0.01..1.0)).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter()
                .map(|x| (x * target / sum).clamp(0.0, 1.0))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_core::prelude::*;
    use pref_core::term::Pref;
    use pref_query::sigma;

    fn maximize_all(d: usize) -> Pref {
        Pref::pareto_all((0..d).map(|i| highest(format!("d{i}").as_str())).collect()).unwrap()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = table(50, 3, Distribution::Independent, 42);
        let b = table(50, 3, Distribution::Independent, 42);
        assert_eq!(a.to_owned_rows(), b.to_owned_rows());
        let c = table(50, 3, Distribution::Independent, 43);
        assert_ne!(a.to_owned_rows(), c.to_owned_rows());
    }

    #[test]
    fn values_in_unit_interval() {
        for dist in Distribution::all() {
            let r = table(200, 4, dist, 7);
            for t in r.iter() {
                for i in 0..4 {
                    let x = t[i].as_f64().unwrap();
                    assert!((0.0..=1.0).contains(&x), "{dist:?} produced {x}");
                }
            }
        }
    }

    #[test]
    fn skyline_sizes_order_by_correlation() {
        // The defining property: |sky(corr)| ≤ |sky(indep)| ≤ |sky(anti)|.
        let n = 600;
        let d = 3;
        let p = maximize_all(d);
        let size = |dist| {
            let r = table(n, d, dist, 11);
            sigma(&p, &r).unwrap().len()
        };
        let corr = size(Distribution::Correlated);
        let ind = size(Distribution::Independent);
        let anti = size(Distribution::Anticorrelated);
        assert!(corr <= ind, "correlated {corr} vs independent {ind}");
        assert!(ind <= anti, "independent {ind} vs anti-correlated {anti}");
        assert!(anti >= 10, "anti-correlated skyline suspiciously small");
    }

    #[test]
    fn dimension_count_matches() {
        let r = table(10, 6, Distribution::Correlated, 1);
        assert_eq!(r.schema().arity(), 6);
        assert_eq!(r.len(), 10);
    }
}
