//! A seeded used-car catalog generator — the e-shop substrate behind the
//! paper's running example (Example 6), the non-monotonicity study and
//! the \[KFH01\] result-size reproduction.
//!
//! Attribute correlations mimic a real catalog: newer cars have lower
//! mileage and higher prices, horsepower drives price and insurance
//! rating up and fuel economy down, and the dealer's commission follows
//! the price.

use pref_relation::{DataType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Make names with rough market-share weights.
const MAKES: &[(&str, f64)] = &[
    ("VW", 0.18),
    ("Opel", 0.14),
    ("Ford", 0.12),
    ("BMW", 0.11),
    ("Mercedes", 0.11),
    ("Audi", 0.10),
    ("Toyota", 0.08),
    ("Renault", 0.06),
    ("Fiat", 0.05),
    ("Volvo", 0.03),
    ("Porsche", 0.01),
    ("Jaguar", 0.01),
];

const CATEGORIES: &[(&str, f64)] = &[
    ("sedan", 0.34),
    ("compact", 0.25),
    ("station wagon", 0.15),
    ("van", 0.10),
    ("suv", 0.08),
    ("cabriolet", 0.05),
    ("roadster", 0.03),
];

const COLORS: &[(&str, f64)] = &[
    ("black", 0.22),
    ("silver", 0.20),
    ("gray", 0.15),
    ("white", 0.12),
    ("blue", 0.12),
    ("red", 0.10),
    ("green", 0.06),
    ("yellow", 0.03),
];

fn weighted<'a>(rng: &mut StdRng, table: &'a [(&'a str, f64)]) -> &'a str {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut x = rng.random_range(0.0..total);
    for (name, w) in table {
        if x < *w {
            return name;
        }
        x -= w;
    }
    table.last().expect("non-empty weight table").0
}

/// The catalog schema: make, category, color, transmission, price,
/// horsepower, mileage, year, commission, fuel_economy, insurance_rating.
pub fn car_schema() -> Schema {
    Schema::new(vec![
        ("make", DataType::Str),
        ("category", DataType::Str),
        ("color", DataType::Str),
        ("transmission", DataType::Str),
        ("price", DataType::Int),
        ("horsepower", DataType::Int),
        ("mileage", DataType::Int),
        ("year", DataType::Int),
        ("commission", DataType::Int),
        ("fuel_economy", DataType::Int),
        ("insurance_rating", DataType::Int),
    ])
    .expect("static schema is valid")
}

/// Generate a used-car catalog of `n` offers.
pub fn catalog(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(car_schema());
    for _ in 0..n {
        let make = weighted(&mut rng, MAKES);
        let category = weighted(&mut rng, CATEGORIES);
        let color = weighted(&mut rng, COLORS);
        let transmission = if rng.random_range(0.0..1.0) < 0.35 {
            "automatic"
        } else {
            "manual"
        };

        let year: i64 = rng.random_range(1988..=2001);
        let age = 2002 - year;
        let premium = matches!(make, "BMW" | "Mercedes" | "Audi" | "Porsche" | "Jaguar");
        let sporty = matches!(category, "cabriolet" | "roadster" | "suv");

        let base_hp: i64 = rng.random_range(45..=120);
        let horsepower = base_hp + if premium { 60 } else { 0 } + if sporty { 50 } else { 0 };

        // Mileage grows with age; price decays with age and mileage, and
        // grows with horsepower and brand premium.
        let mileage = (age * rng.random_range(8_000i64..22_000)).max(0);
        let new_price = 12_000
            + horsepower * 180
            + if premium { 9_000 } else { 0 }
            + if sporty { 5_000 } else { 0 };
        let depreciation = 0.88_f64.powi(age as i32);
        let wear = 1.0 - (mileage as f64 / 500_000.0).min(0.4);
        let price = ((new_price as f64) * depreciation * wear).round() as i64;
        let price = price.max(500);

        let commission = ((price as f64) * rng.random_range(0.03f64..0.08)).round() as i64;
        // Miles-per-gallon-ish figure: drops with horsepower.
        let fuel_economy = (55 - horsepower / 6 + rng.random_range(-4i64..=4)).max(8);
        let insurance_rating =
            (horsepower / 25 + if sporty { 4 } else { 0 } + rng.random_range(0i64..=3))
                .clamp(1, 20);

        r.push_values(vec![
            Value::from(make),
            Value::from(category),
            Value::from(color),
            Value::from(transmission),
            Value::from(price),
            Value::from(horsepower),
            Value::from(mileage),
            Value::from(year),
            Value::from(commission),
            Value::from(fuel_economy),
            Value::from(insurance_rating),
        ])
        .expect("generated car rows match the schema");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_relation::attr;

    #[test]
    fn deterministic_and_sized() {
        let a = catalog(100, 5);
        let b = catalog(100, 5);
        assert_eq!(a.to_owned_rows(), b.to_owned_rows());
        assert_eq!(a.len(), 100);
        assert_eq!(a.schema().arity(), 11);
    }

    #[test]
    fn plausible_value_ranges() {
        let r = catalog(500, 9);
        let price_col = r.schema().index_of(&attr("price")).unwrap();
        let year_col = r.schema().index_of(&attr("year")).unwrap();
        let fuel_col = r.schema().index_of(&attr("fuel_economy")).unwrap();
        for t in r.iter() {
            let price = t[price_col].as_int().unwrap();
            assert!((500..200_000).contains(&price), "price {price}");
            let year = t[year_col].as_int().unwrap();
            assert!((1988..=2001).contains(&year));
            assert!(t[fuel_col].as_int().unwrap() >= 8);
        }
    }

    #[test]
    fn correlations_have_the_right_sign() {
        let r = catalog(2_000, 3);
        let col = |name: &str| r.schema().index_of(&attr(name)).unwrap();
        let pairs: Vec<(f64, f64, f64)> = r
            .iter()
            .map(|t| {
                (
                    t[col("year")].as_int().unwrap() as f64,
                    t[col("mileage")].as_int().unwrap() as f64,
                    t[col("price")].as_int().unwrap() as f64,
                )
            })
            .collect();
        let corr = |xs: Vec<f64>, ys: Vec<f64>| {
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let years: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let miles: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let prices: Vec<f64> = pairs.iter().map(|p| p.2).collect();
        assert!(corr(years.clone(), miles.clone()) < -0.5, "year vs mileage");
        assert!(corr(years, prices.clone()) > 0.3, "year vs price");
        assert!(corr(miles, prices) < 0.0, "mileage vs price");
    }

    #[test]
    fn catalog_covers_the_example6_vocabulary() {
        // Julia's wish list needs cabriolets, roadsters, automatics and
        // non-gray colors to be findable in a big enough catalog.
        let r = catalog(3_000, 1);
        let col = |name: &str| r.schema().index_of(&attr(name)).unwrap();
        let has = |c: usize, v: &str| r.iter().any(|t| t[c].as_str() == Some(v));
        assert!(has(col("category"), "cabriolet"));
        assert!(has(col("category"), "roadster"));
        assert!(has(col("transmission"), "automatic"));
        assert!(has(col("color"), "gray"));
        assert!(has(col("color"), "blue"));
    }
}
