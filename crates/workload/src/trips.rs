//! A trips table for the paper's second Preference SQL example:
//! `SELECT * FROM trips PREFERRING start_date AROUND '2001/11/23' AND
//! duration AROUND 14 BUT ONLY DISTANCE(start_date)<=2 AND
//! DISTANCE(duration)<=2`.

use pref_relation::{DataType, Date, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const DESTINATIONS: &[&str] = &[
    "Mallorca", "Crete", "Tenerife", "Tuscany", "Provence", "Algarve", "Cyprus", "Madeira",
];

/// Schema: destination, start_date, duration (days), price.
pub fn trip_schema() -> Schema {
    Schema::new(vec![
        ("destination", DataType::Str),
        ("start_date", DataType::Date),
        ("duration", DataType::Int),
        ("price", DataType::Int),
    ])
    .expect("static schema is valid")
}

/// Generate `n` trip offers departing in late 2001.
pub fn trips(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(trip_schema());
    let base = Date::parse("2001/11/01").expect("literal date");
    for _ in 0..n {
        let destination = DESTINATIONS[rng.random_range(0..DESTINATIONS.len())];
        let start = Date::from_days(base.days() + rng.random_range(0..60));
        let duration: i64 = *[7, 10, 14, 14, 14, 21]
            .get(rng.random_range(0usize..6))
            .unwrap();
        let price = 300 + duration * rng.random_range(35i64..90) + rng.random_range(0i64..200);
        r.push_values(vec![
            Value::from(destination),
            Value::from(start),
            Value::from(duration),
            Value::from(price),
        ])
        .expect("generated trips match the schema");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_relation::attr;

    #[test]
    fn deterministic_and_in_season() {
        let a = trips(50, 3);
        let b = trips(50, 3);
        assert_eq!(a.to_owned_rows(), b.to_owned_rows());
        let date_col = a.schema().index_of(&attr("start_date")).unwrap();
        let lo = Date::parse("2001/11/01").unwrap();
        let hi = Date::parse("2002/01/01").unwrap();
        for t in a.iter() {
            let d = t[date_col].as_date().unwrap();
            assert!(d >= lo && d < hi);
        }
    }

    #[test]
    fn durations_are_catalog_values() {
        let r = trips(200, 8);
        let dur = r.schema().index_of(&attr("duration")).unwrap();
        for t in r.iter() {
            assert!([7, 10, 14, 21].contains(&t[dur].as_int().unwrap()));
        }
    }
}
