//! The literal datasets and preference terms of the paper's Examples
//! 1–11, shared by the integration tests and the `repro` harness so that
//! every consumer reproduces exactly the published figures.

use pref_core::prelude::*;
use pref_core::term::Pref;
use pref_relation::{rel, Relation};

/// Example 1 / Example 8: the EXPLICIT color preference
/// `EXPLICIT(Color, {(green, yellow), (green, red), (yellow, white)})`.
pub fn example1_pref() -> Pref {
    explicit(
        "color",
        [("green", "yellow"), ("green", "red"), ("yellow", "white")],
    )
    .expect("the paper's graph is acyclic")
}

/// Example 1's color domain as a one-column relation.
pub fn example1_domain() -> Relation {
    rel! {
        ("color": Str);
        ("white",), ("red",), ("yellow",), ("green",), ("brown",), ("black",),
    }
}

/// Example 2 / Example 4: `R(A1, A2, A3)` with val1 … val7.
pub fn example2_relation() -> Relation {
    rel! {
        ("A1": Int, "A2": Int, "A3": Int);
        (-5, 3, 4),   // val1
        (-5, 4, 4),   // val2
        (5, 1, 8),    // val3
        (5, 6, 6),    // val4
        (-6, 0, 6),   // val5
        (-6, 0, 4),   // val6
        (6, 2, 7),    // val7
    }
}

/// Example 2's `P4 = (P1 ⊗ P2) ⊗ P3` with `P1 = AROUND(A1, 0)`,
/// `P2 = LOWEST(A2)`, `P3 = HIGHEST(A3)`.
pub fn example2_pref() -> Pref {
    around("A1", 0).pareto(lowest("A2")).pareto(highest("A3"))
}

/// Example 3: `P7 = P5 ⊗ P6` on the shared attribute Color.
pub fn example3_pref() -> Pref {
    pos("color", ["green", "yellow"]).pareto(neg("color", ["red", "green", "blue", "purple"]))
}

/// Example 3's color set S.
pub fn example3_relation() -> Relation {
    rel! {
        ("color": Str);
        ("red",), ("green",), ("yellow",), ("blue",), ("black",), ("purple",),
    }
}

/// Example 4's `P8 = P1 & P2`.
pub fn example4_p8() -> Pref {
    around("A1", 0).prior(lowest("A2"))
}

/// Example 4's `P9 = (P1 ⊗ P2) & P3`.
pub fn example4_p9() -> Pref {
    around("A1", 0).pareto(lowest("A2")).prior(highest("A3"))
}

/// Example 5: `R(A1, A2)` with val1 … val6.
pub fn example5_relation() -> Relation {
    rel! {
        ("A1": Int, "A2": Int);
        (-5, 3), (-5, 4), (5, 1), (5, 6), (-6, 0), (-6, 0),
    }
}

/// Example 5: `P3 = rank(F)(P1, P2)` with `f1 = distance(x, 0)`,
/// `f2 = distance(x, −2)` and `F(x1, x2) = x1 + 2·x2`.
pub fn example5_pref() -> Pref {
    let f1 = score("A1", "distance(·,0)", |v| v.ordinal().map(|o| o.abs()));
    let f2 = score("A2", "distance(·,-2)", |v| {
        v.ordinal().map(|o| (o + 2.0).abs())
    });
    Pref::rank(CombineFn::weighted_sum(vec![1.0, 2.0]), vec![f1, f2])
        .expect("SCORE operands are rank(F)-compatible")
}

/// Example 6: Julia's five customer preferences.
pub fn example6_julia() -> Vec<Pref> {
    vec![
        pos_pos("category", ["cabriolet"], ["roadster"]).expect("disjoint sets"),
        pos("transmission", ["automatic"]),
        around("horsepower", 100),
        lowest("price"),
        neg("color", ["gray"]),
    ]
}

/// Example 6: `Q1 = P5 & ((P1 ⊗ P2 ⊗ P3) & P4)`.
pub fn example6_q1() -> Pref {
    let [p1, p2, p3, p4, p5]: [Pref; 5] = example6_julia().try_into().expect("five preferences");
    p5.prior(p1.pareto(p2).pareto(p3).prior(p4))
}

/// Example 6: `Q2 = (Q1 & P6) & P7` with the dealer's additions
/// `P6 = HIGHEST(year)`, `P7 = HIGHEST(commission)`.
pub fn example6_q2() -> Pref {
    example6_q1()
        .prior(highest("year"))
        .prior(highest("commission"))
}

/// Example 6: Leslie's color taste `P8`.
pub fn example6_leslie_color() -> Pref {
    pos_neg("color", ["blue"], ["gray", "red"]).expect("disjoint sets")
}

/// Example 6: the renegotiated `Q1* = (P5 ⊗ P8 ⊗ P4) & (P1 ⊗ P2 ⊗ P3)`.
pub fn example6_q1_star() -> Pref {
    let [p1, p2, p3, p4, p5]: [Pref; 5] = example6_julia().try_into().expect("five preferences");
    let p8 = example6_leslie_color();
    p5.pareto(p8).pareto(p4).prior(p1.pareto(p2).pareto(p3))
}

/// Example 6: `Q2* = (Q1* & P6) & P7`.
pub fn example6_q2_star() -> Pref {
    example6_q1_star()
        .prior(highest("year"))
        .prior(highest("commission"))
}

/// Example 7: the Car-DB over (price, mileage).
pub fn example7_cardb() -> Relation {
    rel! {
        ("price": Int, "mileage": Int);
        (40_000, 15_000),  // val1
        (35_000, 30_000),  // val2
        (20_000, 10_000),  // val3
        (15_000, 35_000),  // val4
        (15_000, 30_000),  // val5
    }
}

/// Example 7's `P = LOWEST(price) ⊗ LOWEST(mileage)`.
pub fn example7_pref() -> Pref {
    lowest("price").pareto(lowest("mileage"))
}

/// Example 8's database set `R(Color) = {yellow, red, green, black}`.
pub fn example8_relation() -> Relation {
    rel! {
        ("color": Str);
        ("yellow",), ("red",), ("green",), ("black",),
    }
}

/// Example 9's preference `HIGHEST(fuel_economy) ⊗ HIGHEST(insurance_rating)`.
pub fn example9_pref() -> Pref {
    highest("fuel_economy").pareto(highest("insurance_rating"))
}

/// Example 9's three growing Cars instances.
pub fn example9_series() -> Vec<Relation> {
    let r1 = rel! {
        ("fuel_economy": Int, "insurance_rating": Int, "nickname": Str);
        (100, 3, "frog"), (50, 3, "cat"),
    };
    let r2 = rel! {
        ("fuel_economy": Int, "insurance_rating": Int, "nickname": Str);
        (100, 3, "frog"), (50, 3, "cat"), (50, 10, "shark"),
    };
    let r3 = rel! {
        ("fuel_economy": Int, "insurance_rating": Int, "nickname": Str);
        (100, 3, "frog"), (50, 3, "cat"), (50, 10, "shark"), (100, 10, "turtle"),
    };
    vec![r1, r2, r3]
}

/// Example 10's Cars(Make, Price, Oid).
pub fn example10_relation() -> Relation {
    rel! {
        ("make": Str, "price": Int, "oid": Int);
        ("Audi", 40_000, 1),
        ("BMW", 35_000, 2),
        ("VW", 20_000, 3),
        ("BMW", 50_000, 4),
    }
}

/// Example 11's `R(A) = {3, 6, 9}`.
pub fn example11_relation() -> Relation {
    rel! { ("a": Int); (3,), (6,), (9,) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_query::sigma;

    #[test]
    fn all_fixtures_compile_against_their_relations() {
        assert!(!sigma(&example1_pref(), &example1_domain())
            .unwrap()
            .is_empty());
        assert!(!sigma(&example2_pref(), &example2_relation())
            .unwrap()
            .is_empty());
        assert!(!sigma(&example3_pref(), &example3_relation())
            .unwrap()
            .is_empty());
        assert!(!sigma(&example5_pref(), &example5_relation())
            .unwrap()
            .is_empty());
        assert!(!sigma(&example7_pref(), &example7_cardb())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn example6_terms_cover_the_car_schema() {
        let schema = crate::cars::car_schema();
        for q in [
            example6_q1(),
            example6_q2(),
            example6_q1_star(),
            example6_q2_star(),
        ] {
            for a in q.attributes().iter() {
                assert!(schema.index_of(a).is_some(), "{a} missing from car schema");
            }
        }
    }

    #[test]
    fn example6_attribute_counts_match_paper() {
        // Q1 over {color, category, transmission, horsepower, price};
        // Q2 additionally over year and commission.
        assert_eq!(example6_q1().attributes().len(), 5);
        assert_eq!(example6_q2().attributes().len(), 7);
        assert_eq!(example6_q1_star().attributes().len(), 5);
    }
}
