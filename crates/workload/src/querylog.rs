//! A synthetic customer query log over the car catalog — the substitute
//! for the real INTERSHOP query logs behind the \[KFH01\] result-size
//! benchmark ("typical result sizes of Pareto preferences under BMO query
//! semantics ranged from a few to a few dozens").
//!
//! Each generated query is a Pareto accumulation of 2–5 base preferences
//! sampled from the templates a car-shop search mask offers, optionally
//! prioritised behind a must-have base preference — the shapes Preference
//! SQL's `PREFERRING … AND … CASCADE` produces.

use pref_core::term::{around, between, highest, lowest, neg, pos, pos_pos, Pref};
use pref_query::engine::{Engine, Prepared};
use pref_query::QueryError;
use pref_relation::{attr, predicate_fingerprint, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A hard (exact-match) narrowing a customer applies in the search mask
/// before preferences refine the survivors — like a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Narrow {
    /// `attr = value`.
    Equals(&'static str, Value),
    /// `attr <= value` (numeric).
    AtMost(&'static str, Value),
}

/// One customer query: hard narrowing plus a preference.
#[derive(Debug, Clone)]
pub struct CustomerQuery {
    pub narrowing: Vec<Narrow>,
    pub preference: Pref,
}

impl CustomerQuery {
    /// Apply the hard narrowing to a catalog (the WHERE stage).
    pub fn candidates(&self, catalog: &Relation) -> Relation {
        catalog.select(self.predicate(catalog))
    }

    /// [`CustomerQuery::candidates`] as a *derived view*
    /// ([`Relation::select_derived`]): the result carries
    /// `(catalog generation, narrowing fingerprint)` lineage, so an
    /// engine replaying the log recognizes each round's re-derived
    /// candidate set and serves its score matrices warm.
    pub fn candidates_derived(&self, catalog: &Relation) -> Relation {
        catalog.select_derived(self.predicate(catalog), self.narrowing_fingerprint())
    }

    /// A stable fingerprint of the hard narrowing — the predicate half
    /// of the derived view's lineage key.
    pub fn narrowing_fingerprint(&self) -> u64 {
        let mut rendered = String::new();
        for n in &self.narrowing {
            match n {
                Narrow::Equals(a, v) => rendered.push_str(&format!("eq({a};{v})")),
                Narrow::AtMost(a, v) => rendered.push_str(&format!("le({a};{v})")),
            }
        }
        predicate_fingerprint(rendered.as_bytes())
    }

    fn predicate<'a>(&'a self, catalog: &Relation) -> impl Fn(&pref_relation::Tuple) -> bool + 'a {
        let cols: Vec<(usize, &Narrow)> = self
            .narrowing
            .iter()
            .map(|n| {
                let name = match n {
                    Narrow::Equals(a, _) | Narrow::AtMost(a, _) => *a,
                };
                (
                    catalog
                        .schema()
                        .index_of(&attr(name))
                        .expect("narrowing uses catalog attributes"),
                    n,
                )
            })
            .collect();
        move |t| {
            cols.iter().all(|(c, n)| match n {
                Narrow::Equals(_, v) => &t[*c] == v,
                Narrow::AtMost(_, v) => t[*c].sql_cmp(v).is_some_and(|o| o.is_le()),
            })
        }
    }
}

const COLOR_CHOICES: &[&str] = &[
    "black", "silver", "gray", "white", "blue", "red", "green", "yellow",
];
const MAKE_CHOICES: &[&str] = &["VW", "Opel", "Ford", "BMW", "Mercedes", "Audi", "Toyota"];
const CATEGORY_CHOICES: &[&str] = &[
    "sedan",
    "compact",
    "station wagon",
    "van",
    "suv",
    "cabriolet",
    "roadster",
];

fn pick<'a>(rng: &mut StdRng, xs: &'a [&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

/// One random base preference from the search-mask templates.
fn base_preference(rng: &mut StdRng) -> Pref {
    match rng.random_range(0..10) {
        0 => pos("color", [pick(rng, COLOR_CHOICES)]),
        1 => neg("color", [pick(rng, COLOR_CHOICES)]),
        2 => pos("make", [pick(rng, MAKE_CHOICES), pick(rng, MAKE_CHOICES)]),
        3 => {
            let a = rng.random_range(0..CATEGORY_CHOICES.len());
            let b =
                (a + 1 + rng.random_range(0..CATEGORY_CHOICES.len() - 1)) % CATEGORY_CHOICES.len();
            pos_pos("category", [CATEGORY_CHOICES[a]], [CATEGORY_CHOICES[b]])
                .expect("distinct categories are disjoint")
        }
        4 => around("price", rng.random_range(3..30) * 1_000),
        5 => {
            // Narrow corridors, like a real search mask's price bracket;
            // wide intervals create huge distance-0 tie plateaus that no
            // shopper would formulate.
            let lo = rng.random_range(2..15) * 1_000;
            between("price", lo, lo + rng.random_range(1..=4) * 500)
                .expect("lo <= hi by construction")
        }
        6 => around("horsepower", rng.random_range(6..22) * 10),
        7 => lowest("mileage"),
        8 => lowest("price"),
        _ => highest("year"),
    }
}

/// Generate a log of `n` bare preference terms (no hard narrowing).
pub fn query_log(n: usize, seed: u64) -> Vec<Pref> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| preference_query(&mut rng)).collect()
}

/// Generate a log of `n` full customer queries: hard narrowing plus
/// preference, the shape the \[KFH01\] result-size study measured.
pub fn customer_log(n: usize, seed: u64) -> Vec<CustomerQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| CustomerQuery {
            narrowing: narrowing(&mut rng),
            preference: preference_query(&mut rng),
        })
        .collect()
}

/// A realistic search-mask narrowing: customers almost always fix a make
/// or category and usually cap the price before preferences kick in.
fn narrowing(rng: &mut StdRng) -> Vec<Narrow> {
    let mut out = Vec::with_capacity(2);
    if rng.random_range(0.0..1.0) < 0.6 {
        out.push(Narrow::Equals("make", Value::from(pick(rng, MAKE_CHOICES))));
    } else {
        out.push(Narrow::Equals(
            "category",
            Value::from(pick(rng, CATEGORY_CHOICES)),
        ));
    }
    if rng.random_range(0.0..1.0) < 0.7 {
        out.push(Narrow::AtMost(
            "price",
            Value::from(rng.random_range(6..30) * 1_000),
        ));
    }
    out
}

/// Prepare every query of a log against `schema` once — the session
/// setup step of a replay (parse/rewrite/compile amortized across all
/// subsequent [`replay`] rounds).
pub fn prepare_log(
    engine: &Engine,
    log: &[Pref],
    schema: &Schema,
) -> Result<Vec<Prepared>, QueryError> {
    log.iter().map(|p| engine.prepare(p, schema)).collect()
}

/// Replay a prepared query log against a catalog, returning the total
/// number of best matches across all queries. Executions flow through
/// the engine's score-matrix cache: the first round over a relation
/// generation builds matrices, later rounds (and repeated queries) hit —
/// the streams-of-queries setting the BMO model assumes, measurable via
/// [`Engine::cache_stats`].
pub fn replay(prepared: &[Prepared], catalog: &Relation) -> Result<usize, QueryError> {
    let mut total = 0;
    for q in prepared {
        total += q.execute(catalog)?.rows().len();
    }
    Ok(total)
}

/// Prepare a *customer* log (hard narrowing + preference) against
/// `schema` once — the WHERE-heavy counterpart of [`prepare_log`].
pub fn prepare_customer_log<'a>(
    engine: &Engine,
    log: &'a [CustomerQuery],
    schema: &Schema,
) -> Result<Vec<(Prepared, &'a CustomerQuery)>, QueryError> {
    log.iter()
        .map(|q| Ok((engine.prepare(&q.preference, schema)?, q)))
        .collect()
}

/// Replay a prepared customer log: every query re-derives its candidate
/// set from the catalog ([`CustomerQuery::candidates_derived`]) and runs
/// the preference over it. The derivations are fresh relations each
/// round, but their lineage is stable, so rounds after the first serve
/// their score matrices from the engine's derived-entry cache
/// (`Explain` reports `DerivedHit`; [`Engine::cache_stats`] counts them)
/// — the Preference SQL hard-selection pattern at bench scale.
pub fn replay_customers(
    prepared: &[(Prepared, &CustomerQuery)],
    catalog: &Relation,
) -> Result<usize, QueryError> {
    let mut total = 0;
    for (q, customer) in prepared {
        let candidates = customer.candidates_derived(catalog);
        total += q.execute(&candidates)?.rows().len();
    }
    Ok(total)
}

fn preference_query(rng: &mut StdRng) -> Pref {
    let width = rng.random_range(2..=4);
    let mut parts: Vec<Pref> = Vec::with_capacity(width);
    for _ in 0..width {
        let candidate = base_preference(rng);
        // One preference per attribute, like a search mask.
        if parts
            .iter()
            .all(|p| p.attributes().is_disjoint(&candidate.attributes()))
        {
            parts.push(candidate);
        }
    }
    let pareto = Pref::pareto_all(parts).expect("at least one part sampled");
    if rng.random_range(0.0..1.0) < 0.3 {
        // A must-have in front, like CASCADE in Preference SQL.
        let head = pos("transmission", ["automatic"]);
        head.prior(pareto)
    } else {
        pareto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_log() {
        let a = query_log(20, 4);
        let b = query_log(20, 4);
        let fmt = |v: &[Pref]| v.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn queries_reference_catalog_attributes() {
        let schema = crate::cars::car_schema();
        for q in query_log(100, 17) {
            for a in q.attributes().iter() {
                assert!(
                    schema.index_of(a).is_some(),
                    "query references unknown attribute {a}"
                );
            }
        }
    }

    #[test]
    fn queries_compile_and_run_on_the_catalog() {
        let cars = crate::cars::catalog(300, 2);
        for q in query_log(25, 6) {
            let res = pref_query::sigma(&q, &cars).unwrap();
            assert!(!res.is_empty(), "BMO never returns empty on nonempty R");
        }
    }

    #[test]
    fn customer_log_narrowing_reduces_candidates() {
        let catalog = crate::cars::catalog(2_000, 3);
        for q in customer_log(30, 9) {
            let candidates = q.candidates(&catalog);
            assert!(candidates.len() < catalog.len());
            // The preference still runs on whatever survives.
            if !candidates.is_empty() {
                assert!(!pref_query::sigma(&q.preference, &candidates)
                    .unwrap()
                    .is_empty());
            }
        }
    }

    #[test]
    fn replay_amortizes_across_rounds_and_stays_correct() {
        let cars = crate::cars::catalog(400, 2);
        let log = query_log(12, 6);
        let engine = Engine::new();
        let prepared = prepare_log(&engine, &log, cars.schema()).unwrap();

        let round1 = replay(&prepared, &cars).unwrap();
        let after_first = engine.cache_stats();
        let round2 = replay(&prepared, &cars).unwrap();
        let after_second = engine.cache_stats();

        assert_eq!(round1, round2, "replay must be deterministic");
        assert_eq!(
            after_second.misses, after_first.misses,
            "second round must not rebuild any matrix"
        );
        assert!(
            after_second.hits > after_first.hits,
            "second round must hit the cache"
        );

        // Replay agrees with the free-function path, query by query.
        for (p, q) in log.iter().zip(&prepared) {
            assert_eq!(
                q.execute(&cars).unwrap().into_rows(),
                pref_query::sigma(p, &cars).unwrap(),
                "prepared replay diverged for {p}"
            );
        }
    }

    #[test]
    fn customer_replay_amortizes_via_lineage_and_stays_correct() {
        let catalog = crate::cars::catalog(400, 3);
        let log = customer_log(10, 9);
        let engine = Engine::new();
        let prepared = prepare_customer_log(&engine, &log, catalog.schema()).unwrap();

        let round1 = replay_customers(&prepared, &catalog).unwrap();
        let after_first = engine.cache_stats();
        let round2 = replay_customers(&prepared, &catalog).unwrap();
        let after_second = engine.cache_stats();

        assert_eq!(round1, round2, "replay must be deterministic");
        assert_eq!(
            after_second.misses, after_first.misses,
            "round two re-derives the same subsets: no rebuilds"
        );
        assert!(
            after_second.derived_hits > after_first.derived_hits,
            "re-derived candidate sets must resolve via lineage"
        );

        // Candidate derivations agree, and the preference results match
        // the free-function path query by query.
        for q in &log {
            let derived = q.candidates_derived(&catalog);
            let plain = q.candidates(&catalog);
            assert_eq!(format!("{derived}"), format!("{plain}"));
            assert!(derived.lineage().is_some());
            assert_eq!(
                pref_query::sigma(&q.preference, &derived).unwrap(),
                pref_query::sigma(&q.preference, &plain).unwrap()
            );
        }
    }

    #[test]
    fn attribute_sets_within_one_query_are_disjoint() {
        for q in query_log(200, 5) {
            if let Pref::Pareto(children) = &q {
                for i in 0..children.len() {
                    for j in (i + 1)..children.len() {
                        assert!(children[i]
                            .attributes()
                            .is_disjoint(&children[j].attributes()));
                    }
                }
            }
        }
    }
}
