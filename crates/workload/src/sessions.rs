//! Multi-user Preference SQL *session* scripts — the interactive
//! e-shopping traffic the paper's client/server deployment serves.
//!
//! A session is a refinement chain, not a bag of independent queries: a
//! shopper anchors on a preference (often one of a handful of popular
//! search-mask combinations), then narrows step by step — tightening the
//! price cap, lingering on a result page, occasionally wandering to a
//! fresh query. That shape is exactly what the engine's warm tiers are
//! built for: the anchor warms the whole-table matrix, every tightened
//! cap is a never-seen predicate that *windows* onto it, a lingering
//! repeat resolves via lineage, and only wandering builds cold.
//!
//! Statements are plain Preference SQL strings over the
//! [`cars`](crate::cars) catalog (table `car`), so they can be replayed
//! through an in-process `PrefSql` session or piped verbatim to the
//! query server's `EXEC`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One client's statement chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript {
    /// Preference SQL statements, in session order.
    pub statements: Vec<String>,
}

const COLORS: &[&str] = &[
    "black", "silver", "gray", "white", "blue", "red", "green", "yellow",
];
const MAKES: &[&str] = &["VW", "Opel", "Ford", "BMW", "Mercedes", "Audi", "Toyota"];
const CATEGORIES: &[&str] = &[
    "sedan",
    "compact",
    "station wagon",
    "van",
    "suv",
    "cabriolet",
    "roadster",
];

fn pick<'a>(rng: &mut StdRng, xs: &'a [&'a str]) -> &'a str {
    xs[rng.random_range(0..xs.len())]
}

/// One base preference as SQL, with the attribute it constrains (the
/// same search-mask templates as [`crate::querylog::query_log`], in
/// Preference SQL surface syntax).
fn base_preference_sql(rng: &mut StdRng) -> (&'static str, String) {
    match rng.random_range(0..10) {
        0 => ("color", format!("color IN ('{}')", pick(rng, COLORS))),
        1 => ("color", format!("color NOT IN ('{}')", pick(rng, COLORS))),
        2 => (
            "make",
            format!("make IN ('{}', '{}')", pick(rng, MAKES), pick(rng, MAKES)),
        ),
        3 => {
            let a = rng.random_range(0..CATEGORIES.len());
            let b = (a + 1 + rng.random_range(0..CATEGORIES.len() - 1)) % CATEGORIES.len();
            (
                "category",
                format!(
                    "category = '{}' ELSE category = '{}'",
                    CATEGORIES[a], CATEGORIES[b]
                ),
            )
        }
        4 => (
            "price",
            format!("price AROUND {}", rng.random_range(3..30) * 1_000),
        ),
        5 => {
            let lo = rng.random_range(2..15) * 1_000;
            let hi = lo + rng.random_range(1..=4) * 500;
            ("price", format!("price BETWEEN {lo} AND {hi}"))
        }
        6 => (
            "horsepower",
            format!("horsepower AROUND {}", rng.random_range(6..22) * 10),
        ),
        7 => ("mileage", "LOWEST(mileage)".to_string()),
        8 => ("price", "LOWEST(price)".to_string()),
        _ => ("year", "HIGHEST(year)".to_string()),
    }
}

/// A full PREFERRING clause body: a Pareto accumulation of 2–4 base
/// preferences over distinct attributes, 30% of the time prioritised
/// behind a must-have (`PRIOR TO`), like `CASCADE` chains in the paper.
fn preference_sql(rng: &mut StdRng) -> String {
    let width = rng.random_range(2..=4);
    let mut attrs: Vec<&str> = Vec::with_capacity(width);
    let mut parts: Vec<String> = Vec::with_capacity(width);
    for _ in 0..width {
        let (attr, sql) = base_preference_sql(rng);
        if !attrs.contains(&attr) {
            attrs.push(attr);
            parts.push(sql);
        }
    }
    let pareto = parts.join(" AND ");
    if rng.random_range(0.0..1.0) < 0.3 {
        format!("transmission = 'automatic' PRIOR TO ({pareto})")
    } else {
        pareto
    }
}

/// A search-mask WHERE clause: customers almost always fix a make or a
/// category and usually cap the price (the [`crate::querylog`]
/// narrowing, as SQL).
fn narrowing_sql(rng: &mut StdRng) -> String {
    let mut out = if rng.random_range(0.0..1.0) < 0.6 {
        format!("WHERE make = '{}'", pick(rng, MAKES))
    } else {
        format!("WHERE category = '{}'", pick(rng, CATEGORIES))
    };
    if rng.random_range(0.0..1.0) < 0.7 {
        out.push_str(&format!(
            " AND price <= {}",
            rng.random_range(6..30) * 1_000
        ));
    }
    out
}

/// `n` independent customer statements (hard narrowing + preference) —
/// the \[KFH01\]-shaped query log as Preference SQL, for replay through
/// the server.
pub fn sql_customer_log(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let narrowing = narrowing_sql(&mut rng);
            let pref = preference_sql(&mut rng);
            format!("SELECT * FROM car {narrowing} PREFERRING {pref}")
        })
        .collect()
}

/// `sessions` refinement chains of `steps` statements each. Sessions
/// draw their anchor preference from a small shared pool (popular
/// search-mask combinations recur across clients, so one session's warm
/// matrix serves another's), then mostly *tighten* — fresh price caps
/// over the anchored preference — with occasional lingering repeats and
/// rare wanders to brand-new queries.
pub fn session_scripts(sessions: usize, steps: usize, seed: u64) -> Vec<SessionScript> {
    let mut pool_rng = StdRng::seed_from_u64(seed ^ 0x5e55_10a5);
    let pool: Vec<String> = (0..8).map(|_| preference_sql(&mut pool_rng)).collect();
    (0..sessions as u64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9)));
            let pref = &pool[rng.random_range(0..pool.len())];
            let mut statements = vec![format!("SELECT * FROM car PREFERRING {pref}")];
            let mut cap = rng.random_range(18i64..40) * 1_000;
            for _ in 1..steps {
                let roll = rng.random_range(0.0..1.0);
                if roll < 0.2 {
                    // Linger: re-run the last statement (a warm repeat).
                    let last = statements.last().expect("chain starts non-empty").clone();
                    statements.push(last);
                } else if roll < 0.85 {
                    // Refine: tighten the cap — a never-seen predicate
                    // over the anchored (warmed) preference.
                    cap = (cap * i64::from(rng.random_range(70..95u32)) / 100).max(2_000);
                    statements.push(format!(
                        "SELECT * FROM car WHERE price <= {cap} PREFERRING {pref}"
                    ));
                } else {
                    // Wander: a brand-new customer query.
                    let narrowing = narrowing_sql(&mut rng);
                    let fresh = preference_sql(&mut rng);
                    statements.push(format!("SELECT * FROM car {narrowing} PREFERRING {fresh}"));
                }
            }
            SessionScript { statements }
        })
        .collect()
}

/// Open-loop arrival offsets (nanoseconds from start) for `n` events at
/// `rate_per_sec`: exponential inter-arrivals, i.e. a Poisson process —
/// the independent-clients model, bursts included. Deterministic per
/// seed.
pub fn poisson_arrivals(n: usize, rate_per_sec: f64, seed: u64) -> Vec<u64> {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            // Inverse-CDF sampling; 1-u is in (0, 1] so ln is finite.
            t += -(1.0 - u).ln() / rate_per_sec;
            (t * 1e9) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_sql::{parse, PrefSql};

    #[test]
    fn scripts_are_deterministic_and_sized() {
        let a = session_scripts(6, 10, 42);
        let b = session_scripts(6, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|s| s.statements.len() == 10));
        // Different seeds actually vary.
        assert_ne!(a, session_scripts(6, 10, 43));
    }

    #[test]
    fn every_generated_statement_parses() {
        for script in session_scripts(12, 12, 7) {
            for sql in &script.statements {
                parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            }
        }
        for sql in sql_customer_log(50, 3) {
            parse(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn refinement_chains_run_warm() {
        let mut db = PrefSql::new();
        db.register("car", crate::cars::catalog(600, 2));
        for script in session_scripts(4, 8, 11) {
            for sql in &script.statements {
                db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            }
        }
        let stats = db.engine().cache_stats();
        // The chains are refinement-shaped: tightened caps must resolve
        // through the window tier, and warm executions must dominate
        // cold builds across the run.
        assert!(stats.window_hits > 0, "no window hits: {stats:?}");
        assert!(
            stats.hits > stats.misses,
            "refinement traffic should be warm-dominated: {stats:?}"
        );
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_rate_shaped() {
        let arrivals = poisson_arrivals(2_000, 500.0, 9);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ 2ms at 500/s; allow generous slack.
        let total_s = *arrivals.last().unwrap() as f64 / 1e9;
        let achieved = arrivals.len() as f64 / total_s;
        assert!(
            (achieved - 500.0).abs() < 75.0,
            "achieved arrival rate {achieved:.0}/s, wanted ~500/s"
        );
        assert_eq!(
            poisson_arrivals(10, 500.0, 9),
            poisson_arrivals(10, 500.0, 9)
        );
    }
}
