//! # pref-workload — workload generators for preference experiments
//!
//! Seeded, deterministic data generators standing in for the artifacts the
//! paper evaluates on (see DESIGN.md "Substitutions"):
//!
//! * [`synthetic`] — the independent / correlated / anti-correlated
//!   skyline workloads of \[BKS01\];
//! * [`cars`] — a used-car e-shop catalog with realistic attribute
//!   correlations (Example 6, Example 9, the e-shop study);
//! * [`trips`] — travel offers for the `BUT ONLY` Preference SQL example;
//! * [`querylog`] — random customer preference queries reproducing the
//!   \[KFH01\] result-size benchmark;
//! * [`sessions`] — multi-user Preference SQL refinement chains plus
//!   open-loop (Poisson) arrival schedules, the query-server workload;
//! * [`paper`] — the exact literal datasets of Examples 1–11.

pub mod cars;
pub mod paper;
pub mod querylog;
pub mod sessions;
pub mod synthetic;
pub mod trips;

pub use synthetic::Distribution;
