//! Better-than graphs (Def. 2): Hasse diagrams of preferences restricted
//! to finite sets, with the paper's level and quality notions.
//!
//! "Since preferences reflect important aspects of the real world a good
//! visual representation is essential" — this module regenerates every
//! graph figure in the paper (Examples 1–4, 7) and exports DOT for real
//! visualisation.

use std::fmt::Write as _;

use pref_relation::{Relation, Tuple, Value};

use crate::base::BasePreference;
use crate::eval::CompiledPref;
use crate::spo::{check_spo, SpoViolation};

/// The better-than graph of a preference restricted to `n` items.
#[derive(Debug, Clone)]
pub struct BetterGraph {
    n: usize,
    /// Full strict order: `rel[x*n+y]` iff `x <P y`.
    rel: Vec<bool>,
    /// Hasse cover edges `(worse, better)`.
    hasse: Vec<(usize, usize)>,
    /// `levels[x]` = 1 for maximal items, else 1 + length of the longest
    /// chain above `x` (Def. 2).
    levels: Vec<u32>,
}

impl BetterGraph {
    /// Build from an arbitrary better-than function over item indices;
    /// validates the strict-partial-order axioms first.
    pub fn from_fn(n: usize, better: impl Fn(usize, usize) -> bool) -> Result<Self, SpoViolation> {
        check_spo(n, &better)?;
        let mut rel = vec![false; n * n];
        for x in 0..n {
            for y in 0..n {
                rel[x * n + y] = better(x, y);
            }
        }

        // Hasse reduction: keep x<y with no z strictly between.
        let mut hasse = Vec::new();
        for x in 0..n {
            for y in 0..n {
                if !rel[x * n + y] {
                    continue;
                }
                let covered = (0..n).any(|z| rel[x * n + z] && rel[z * n + y]);
                if !covered {
                    hasse.push((x, y));
                }
            }
        }

        // Levels: fixpoint of level(x) = 1 + max(level(y) | x < y).
        let mut levels = vec![1u32; n];
        loop {
            let mut changed = false;
            for x in 0..n {
                let mut best = 1;
                for y in 0..n {
                    if rel[x * n + y] {
                        best = best.max(levels[y] + 1);
                    }
                }
                if levels[x] != best {
                    levels[x] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        Ok(BetterGraph {
            n,
            rel,
            hasse,
            levels,
        })
    }

    /// Graph of a compiled preference over a relation's tuples.
    pub fn from_relation(pref: &CompiledPref, rel: &Relation) -> Result<Self, SpoViolation> {
        BetterGraph::from_fn(rel.len(), |x, y| pref.better(rel.row(x), rel.row(y)))
    }

    /// Graph of a base preference over a sample of values.
    pub fn from_values(pref: &dyn BasePreference, dom: &[Value]) -> Result<Self, SpoViolation> {
        BetterGraph::from_fn(dom.len(), |x, y| pref.better(&dom[x], &dom[y]))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the graph over an empty item set?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full-order query: `x <P y`.
    pub fn better(&self, x: usize, y: usize) -> bool {
        self.rel[x * self.n + y]
    }

    /// The Hasse cover edges `(worse, better)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.hasse
    }

    /// Level of item `x` (1 = maximal; Def. 2).
    pub fn level(&self, x: usize) -> u32 {
        self.levels[x]
    }

    /// Maximal items — `max(P)` restricted to the item set.
    pub fn maximal(&self) -> Vec<usize> {
        (0..self.n).filter(|&x| self.levels[x] == 1).collect()
    }

    /// Minimal items (no successor: nothing is worse).
    pub fn minimal(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&y| (0..self.n).all(|x| !self.rel[x * self.n + y]))
            .collect()
    }

    /// Items grouped by level: `groups()[0]` is level 1, etc.
    pub fn level_groups(&self) -> Vec<Vec<usize>> {
        let depth = self.levels.iter().copied().max().unwrap_or(0) as usize;
        let mut groups = vec![Vec::new(); depth];
        for x in 0..self.n {
            groups[self.levels[x] as usize - 1].push(x);
        }
        groups
    }

    /// All unranked pairs `x ≠ y` with neither `x < y` nor `y < x` — the
    /// paper's "natural reservoir to negotiate compromises".
    pub fn unranked_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for x in 0..self.n {
            for y in (x + 1)..self.n {
                if !self.rel[x * self.n + y] && !self.rel[y * self.n + x] {
                    out.push((x, y));
                }
            }
        }
        out
    }

    /// Is the restriction a chain (every pair ranked, Def. 3a)?
    pub fn is_chain(&self) -> bool {
        self.unranked_pairs().is_empty()
    }

    /// Graphviz DOT output with 'better' drawn above 'worse', like the
    /// paper's figures.
    pub fn to_dot(&self, labels: &[String]) -> String {
        let mut s = String::from("digraph better_than {\n  rankdir=BT;\n");
        for x in 0..self.n {
            let label = labels.get(x).cloned().unwrap_or_else(|| x.to_string());
            let _ = writeln!(s, "  n{x} [label=\"{label}\"];");
        }
        for &(worse, better) in &self.hasse {
            let _ = writeln!(s, "  n{worse} -> n{better};");
        }
        s.push_str("}\n");
        s
    }

    /// Plain-text rendering grouped by level, matching the layout of the
    /// paper's figures.
    pub fn render(&self, labels: &[String]) -> String {
        let mut s = String::new();
        for (i, group) in self.level_groups().iter().enumerate() {
            let names: Vec<String> = group
                .iter()
                .map(|&x| labels.get(x).cloned().unwrap_or_else(|| x.to_string()))
                .collect();
            let _ = writeln!(s, "Level {}: {}", i + 1, names.join("  "));
        }
        s
    }
}

/// Convenience: label list from a relation's tuples.
pub fn tuple_labels(rel: &Relation) -> Vec<String> {
    rel.iter().map(Tuple::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Explicit;
    use pref_relation::rel;

    /// Example 1's EXPLICIT color preference over its six-color domain.
    fn example1() -> (Explicit, Vec<Value>) {
        let p =
            Explicit::new([("green", "yellow"), ("green", "red"), ("yellow", "white")]).unwrap();
        let dom = ["white", "red", "yellow", "green", "brown", "black"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        (p, dom)
    }

    #[test]
    fn example1_graph_levels() {
        let (p, dom) = example1();
        let g = BetterGraph::from_values(&p, &dom).unwrap();
        // white(0), red(1) at level 1; yellow(2) level 2; green(3) level 3;
        // brown(4), black(5) level 4.
        assert_eq!(g.level(0), 1);
        assert_eq!(g.level(1), 1);
        assert_eq!(g.level(2), 2);
        assert_eq!(g.level(3), 3);
        assert_eq!(g.level(4), 4);
        assert_eq!(g.level(5), 4);
        assert_eq!(g.maximal(), vec![0, 1]);
        assert_eq!(g.minimal(), vec![4, 5]);
        assert_eq!(
            g.level_groups(),
            vec![vec![0, 1], vec![2], vec![3], vec![4, 5]]
        );
    }

    #[test]
    fn example1_hasse_has_no_transitive_edges() {
        let (p, dom) = example1();
        let g = BetterGraph::from_values(&p, &dom).unwrap();
        // green < white holds in the order…
        assert!(g.better(3, 0));
        // …but is not a cover edge (goes through yellow).
        assert!(!g.edges().contains(&(3, 0)));
        assert!(g.edges().contains(&(3, 2))); // green -> yellow
        assert!(g.edges().contains(&(2, 0))); // yellow -> white
    }

    #[test]
    fn chain_detection() {
        let g = BetterGraph::from_fn(4, |x, y| x < y).unwrap();
        assert!(g.is_chain());
        assert_eq!(g.level_groups(), vec![vec![3], vec![2], vec![1], vec![0]]);
        let g = BetterGraph::from_fn(3, |_, _| false).unwrap();
        assert!(!g.is_chain());
        assert_eq!(g.unranked_pairs().len(), 3);
        assert_eq!(g.maximal(), vec![0, 1, 2]);
    }

    #[test]
    fn rejects_non_spo() {
        assert!(BetterGraph::from_fn(2, |_, _| true).is_err());
    }

    #[test]
    fn from_relation_example2() {
        use crate::term::{around, highest, lowest};
        let r = rel! {
            ("A1": Int, "A2": Int, "A3": Int);
            (-5, 3, 4), (-5, 4, 4), (5, 1, 8), (5, 6, 6),
            (-6, 0, 6), (-6, 0, 4), (6, 2, 7),
        };
        let p = around("A1", 0).pareto(lowest("A2")).pareto(highest("A3"));
        let c = CompiledPref::compile(&p, r.schema()).unwrap();
        let g = BetterGraph::from_relation(&c, &r).unwrap();
        // Paper figure: Level 1 = {val1, val3, val5}, Level 2 = the rest.
        assert_eq!(g.level_groups(), vec![vec![0, 2, 4], vec![1, 3, 5, 6]]);
    }

    #[test]
    fn dot_and_render_output() {
        let (p, dom) = example1();
        let g = BetterGraph::from_values(&p, &dom).unwrap();
        let labels: Vec<String> = dom.iter().map(|v| v.to_string()).collect();
        let dot = g.to_dot(&labels);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n3 -> n2")); // green -> yellow
        let txt = g.render(&labels);
        assert!(txt.starts_with("Level 1: 'white'  'red'"));
        assert!(txt.contains("Level 4: 'brown'  'black'"));
    }

    #[test]
    fn empty_graph() {
        let g = BetterGraph::from_fn(0, |_, _| false).unwrap();
        assert!(g.is_empty());
        assert!(g.maximal().is_empty());
        assert!(g.level_groups().is_empty());
    }
}
