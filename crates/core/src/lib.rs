//! # pref-core — preferences as strict partial orders
//!
//! A faithful implementation of the preference model of
//!
//! > W. Kießling. *Foundations of Preferences in Database Systems.*
//! > VLDB 2002.
//!
//! Preferences are strict partial orders `P = (A, <P)` over attribute
//! domains (Def. 1), constructed inductively (Def. 5) from
//!
//! * **base preferences** on single attributes — non-numerical
//!   (POS, NEG, POS/NEG, POS/POS, EXPLICIT; Def. 6) and numerical
//!   (AROUND, BETWEEN, LOWEST, HIGHEST, SCORE; Def. 7) — see [`base`];
//! * **complex constructors** — Pareto `⊗`, prioritised `&`,
//!   numerical `rank(F)`, intersection `♦`, disjoint union `+`, dual
//!   `∂` and anti-chains (Def. 3, 8–12) — see [`term`].
//!
//! On top of the model sit the better-than graphs of Def. 2 ([`graph`]),
//! strict-partial-order validation ([`spo`]) and the preference algebra of
//! Section 4 ([`algebra`]): term equivalence, the laws of Prop. 2–6
//! including the discrimination and non-discrimination theorems, a
//! law-driven term simplifier, and the sub-constructor hierarchies of
//! §3.4.
//!
//! BMO query evaluation (`σ[P](R)`, Section 5) lives in the `pref-query`
//! crate; this crate provides the compiled point-wise semantics
//! ([`eval::CompiledPref`]) it builds on.
//!
//! ## Example
//!
//! ```
//! use pref_core::prelude::*;
//! use pref_relation::rel;
//!
//! // Julia's wishes from the paper's Example 6:
//! let p1 = pos_pos("category", ["cabriolet"], ["roadster"]).unwrap();
//! let p2 = pos("transmission", ["automatic"]);
//! let p3 = around("horsepower", 100);
//! let p4 = lowest("price");
//! let p5 = neg("color", ["gray"]);
//! let q1 = p5.prior(p1.pareto(p2).pareto(p3).prior(p4));
//! assert_eq!(q1.attributes().len(), 5);
//!
//! let cars = rel! {
//!     ("category": Str, "transmission": Str, "horsepower": Int,
//!      "price": Int, "color": Str);
//!     ("cabriolet", "automatic", 110, 20_000, "red"),
//!     ("sedan", "manual", 100, 15_000, "gray"),
//! };
//! let compiled = CompiledPref::compile(&q1, cars.schema()).unwrap();
//! assert!(compiled.better(cars.row(1), cars.row(0)));
//! ```

pub mod algebra;
pub mod base;
pub mod error;
pub mod eval;
pub mod graph;
pub mod param;
pub mod repo;
pub mod spo;
pub mod term;
pub mod text;

pub use error::CoreError;

/// Everything needed to build and evaluate preferences.
pub mod prelude {
    pub use crate::algebra::{equivalent_on, simplify, simplify_traced, RewriteStep};
    pub use crate::base::{BasePreference, BaseRef};
    pub use crate::error::CoreError;
    pub use crate::eval::CompiledPref;
    pub use crate::graph::BetterGraph;
    pub use crate::param::{around_slot, ParamBase, ParamSpec, SlotValue};
    pub use crate::repo::Repository;
    pub use crate::term::{
        antichain, around, between, explicit, highest, layered, lowest, neg, pos, pos_neg, pos_pos,
        score, BasePref, CombineFn, Pref,
    };
    pub use crate::text::parse_term;
}
