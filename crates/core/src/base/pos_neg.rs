//! POS/NEG preference (Def. 6c): favorites first, dislikes last,
//! everything else in between.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, Range};
use crate::error::CoreError;

/// `POS/NEG(A, POS-set; NEG-set)`:
///
/// ```text
/// x <P y  iff  (x ∈ NEG ∧ y ∉ NEG) ∨ (x ∉ NEG ∧ x ∉ POS ∧ y ∈ POS)
/// ```
///
/// POS values are maximal (level 1), NEG values at level 3, all others at
/// level 2. The sets must be disjoint.
#[derive(Debug, Clone)]
pub struct PosNeg {
    pos: HashSet<Value>,
    neg: HashSet<Value>,
}

impl PosNeg {
    /// Build from favorite and disliked values; rejects overlapping sets.
    pub fn new<I, J, V, W>(pos: I, neg: J) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = V>,
        J: IntoIterator<Item = W>,
        V: Into<Value>,
        W: Into<Value>,
    {
        let pos: HashSet<Value> = pos.into_iter().map(Into::into).collect();
        let neg: HashSet<Value> = neg.into_iter().map(Into::into).collect();
        if let Some(witness) = pos.intersection(&neg).next() {
            return Err(CoreError::OverlappingSets {
                constructor: "POS/NEG",
                witness: witness.clone(),
            });
        }
        Ok(PosNeg { pos, neg })
    }

    /// The POS-set.
    pub fn pos_set(&self) -> &HashSet<Value> {
        &self.pos
    }

    /// The NEG-set.
    pub fn neg_set(&self) -> &HashSet<Value> {
        &self.neg
    }
}

impl BasePreference for PosNeg {
    fn name(&self) -> &'static str {
        "POS/NEG"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        (self.neg.contains(x) && !self.neg.contains(y))
            || (!self.neg.contains(x) && !self.pos.contains(x) && self.pos.contains(y))
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(if self.pos.contains(v) {
            1
        } else if self.neg.contains(v) {
            3
        } else {
            2
        })
    }

    // Level-based orders embed as negated levels (level 1 = best).
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        self.level(v).map(|l| -f64::from(l))
    }

    // Exact inverse of the negated-level embedding above.
    fn level_from_key(&self, key: f64) -> Option<u32> {
        Some((-key) as u32)
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(if self.pos.is_empty() {
            !self.neg.contains(v)
        } else {
            self.pos.contains(v)
        })
    }

    fn range(&self) -> Range {
        if self.pos.is_empty() && self.neg.is_empty() {
            Range::Known(HashSet::new())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        format!("{}; {}", fmt_value_set(&self.pos), fmt_value_set(&self.neg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    fn paper_example() -> PosNeg {
        // P := POS/NEG(Color, POS-set{yellow}; NEG-set{gray})   (Example 1)
        PosNeg::new(["yellow"], ["gray"]).unwrap()
    }

    #[test]
    fn three_tier_order() {
        let p = paper_example();
        // gray < anything not gray
        assert!(p.better(&v("gray"), &v("red")));
        assert!(p.better(&v("gray"), &v("yellow")));
        // middle < yellow
        assert!(p.better(&v("red"), &v("yellow")));
        // not the other way around
        assert!(!p.better(&v("yellow"), &v("red")));
        assert!(!p.better(&v("red"), &v("gray")));
        // two middles are unranked
        assert!(!p.better(&v("red"), &v("blue")));
        assert!(!p.better(&v("blue"), &v("red")));
    }

    #[test]
    fn levels_match_def6c() {
        let p = paper_example();
        assert_eq!(p.level(&v("yellow")), Some(1));
        assert_eq!(p.level(&v("red")), Some(2));
        assert_eq!(p.level(&v("gray")), Some(3));
    }

    #[test]
    fn rejects_overlap() {
        let err = PosNeg::new(["red"], ["red", "gray"]).unwrap_err();
        assert!(matches!(err, CoreError::OverlappingSets { .. }));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = PosNeg::new(["a", "b"], ["x"]).unwrap();
        let dom: Vec<Value> = ["a", "b", "c", "d", "x"].iter().map(|s| v(s)).collect();
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn leslie_preference_example6() {
        // P8 := POS/NEG(Color, POS{blue}; NEG{gray, red})
        let p = PosNeg::new(["blue"], ["gray", "red"]).unwrap();
        assert!(p.better(&v("red"), &v("black")));
        assert!(p.better(&v("black"), &v("blue")));
        assert!(p.better(&v("gray"), &v("blue")));
        assert!(!p.better(&v("blue"), &v("blue")));
    }
}
