//! POS preference (Def. 6a): a desired value should be one from a set of
//! favorites; any other value is acceptable but worse.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, Range};

/// `POS(A, POS-set)`: `x <P y  iff  x ∉ POS-set ∧ y ∈ POS-set`.
///
/// All POS values are maximal (level 1); all other values are at level 2.
#[derive(Debug, Clone)]
pub struct Pos {
    pos: HashSet<Value>,
}

impl Pos {
    /// Build from any collection of favorite values.
    pub fn new<I, V>(pos: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Pos {
            pos: pos.into_iter().map(Into::into).collect(),
        }
    }

    /// The POS-set.
    pub fn pos_set(&self) -> &HashSet<Value> {
        &self.pos
    }
}

impl BasePreference for Pos {
    fn name(&self) -> &'static str {
        "POS"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        !self.pos.contains(x) && self.pos.contains(y)
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(if self.pos.contains(v) { 1 } else { 2 })
    }

    // Level-based orders embed as negated levels (level 1 = best).
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        self.level(v).map(|l| -f64::from(l))
    }

    // Exact inverse of the negated-level embedding above.
    fn level_from_key(&self, key: f64) -> Option<u32> {
        Some((-key) as u32)
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(self.pos.is_empty() || self.pos.contains(v))
    }

    fn range(&self) -> Range {
        // Every non-POS value is ranked against every POS value, so the
        // range is the whole domain — unless POS is empty, in which case
        // the order is empty.
        if self.pos.is_empty() {
            Range::Known(HashSet::new())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        fmt_value_set(&self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn example1_transmission() {
        // P := POS(Transmission, {automatic})   (Example 1)
        let p = Pos::new(["automatic"]);
        assert!(p.better(&v("manual"), &v("automatic")));
        assert!(!p.better(&v("automatic"), &v("manual")));
        assert!(!p.better(&v("manual"), &v("semi")));
        assert!(!p.better(&v("automatic"), &v("automatic")));
    }

    #[test]
    fn levels() {
        let p = Pos::new(["a", "b"]);
        assert_eq!(p.level(&v("a")), Some(1));
        assert_eq!(p.level(&v("z")), Some(2));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = Pos::new(["a", "b"]);
        let dom: Vec<Value> = ["a", "b", "c", "d"].iter().map(|s| v(s)).collect();
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn empty_pos_set_is_antichain() {
        let p = Pos::new(Vec::<&str>::new());
        assert!(!p.better(&v("a"), &v("b")));
        assert_eq!(p.range(), Range::Known(HashSet::new()));
    }

    #[test]
    fn display_params() {
        let p = Pos::new(["yellow"]);
        assert_eq!(p.params(), "{'yellow'}");
        assert_eq!(p.name(), "POS");
    }
}
