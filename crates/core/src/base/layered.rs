//! Layered preferences: the common super-constructor behind POS, NEG,
//! POS/NEG and POS/POS.
//!
//! §3.3.2 of the paper characterises the non-numerical base constructors as
//! linear sums of anti-chains, e.g. `POS = POS-set↔ ⊕ other-values↔`.
//! [`Layered`] implements exactly that: an ordered list of value layers,
//! one of which may be the implicit "other values" layer. §3.4 notes
//! "there is certainly space for more sub-constructor relationships" — this
//! is that more general constructor, and the unit tests of
//! `algebra::hierarchy` verify that the four Def. 6 constructors are
//! special cases of it.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, Range};
use crate::error::CoreError;

/// One layer of a [`Layered`] preference.
#[derive(Debug, Clone)]
pub enum Layer {
    /// An explicit, finite anti-chain of values.
    Set(HashSet<Value>),
    /// All domain values not mentioned in any other layer
    /// (the paper's "other values").
    Others,
}

impl Layer {
    /// Convenience constructor for an explicit layer.
    pub fn of<I, V>(values: I) -> Layer
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Layer::Set(values.into_iter().map(Into::into).collect())
    }
}

/// A linear sum of anti-chain layers: values in earlier layers are better
/// than values in later layers; values within one layer are unranked.
#[derive(Debug, Clone)]
pub struct Layered {
    layers: Vec<Layer>,
}

impl Layered {
    /// Build from layers, best first. At most one [`Layer::Others`] is
    /// allowed and explicit layers must be pairwise disjoint (Def. 12
    /// requires disjoint carriers).
    pub fn new(layers: Vec<Layer>) -> Result<Self, CoreError> {
        let mut seen: HashSet<Value> = HashSet::new();
        let mut others = 0;
        for layer in &layers {
            match layer {
                Layer::Others => others += 1,
                Layer::Set(s) => {
                    for v in s {
                        if !seen.insert(v.clone()) {
                            return Err(CoreError::CarriersNotDisjoint { witness: v.clone() });
                        }
                    }
                }
            }
        }
        if others > 1 {
            // A second Others layer would overlap the first everywhere;
            // report it as a carrier overlap without a specific witness.
            return Err(CoreError::CarriersNotDisjoint {
                witness: Value::Null,
            });
        }
        Ok(Layered { layers })
    }

    /// 0-based index of the layer containing `v`.
    fn layer_of(&self, v: &Value) -> usize {
        let mut others_at = self.layers.len(); // default: below everything
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Set(s) => {
                    if s.contains(v) {
                        return i;
                    }
                }
                Layer::Others => others_at = i,
            }
        }
        others_at
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

impl BasePreference for Layered {
    fn name(&self) -> &'static str {
        "LAYERED"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        // Strictly earlier layer = strictly better. Values outside every
        // layer (possible only when no Others layer exists) sit below all
        // layers and are mutually unranked.
        self.layer_of(y) < self.layer_of(x)
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(self.layer_of(v) as u32 + 1)
    }

    // `layer_of` is total (outside values share the bottom), so the
    // negated layer index is an exact dominance key.
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        Some(-(self.layer_of(v) as f64))
    }

    // The key is the negated 0-based layer; levels are 1-based.
    fn level_from_key(&self, key: f64) -> Option<u32> {
        Some((-key) as u32 + 1)
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(self.layer_of(v) == 0)
    }

    fn range(&self) -> Range {
        if self.layers.len() <= 1 {
            Range::Known(HashSet::new())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        let body: Vec<String> = self
            .layers
            .iter()
            .map(|l| match l {
                Layer::Set(s) => fmt_value_set(s),
                Layer::Others => "others".to_string(),
            })
            .collect();
        body.join(" ⊕ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn pos_as_layers() {
        // POS = POS-set↔ ⊕ other-values↔   (§3.3.2)
        let p = Layered::new(vec![Layer::of(["a", "b"]), Layer::Others]).unwrap();
        assert!(p.better(&v("z"), &v("a")));
        assert!(!p.better(&v("a"), &v("z")));
        assert!(!p.better(&v("a"), &v("b")));
        assert_eq!(p.level(&v("a")), Some(1));
        assert_eq!(p.level(&v("z")), Some(2));
    }

    #[test]
    fn pos_neg_as_layers() {
        // POS/NEG = (POS↔ ⊕ others↔) ⊕ NEG↔
        let p = Layered::new(vec![
            Layer::of(["yellow"]),
            Layer::Others,
            Layer::of(["gray"]),
        ])
        .unwrap();
        assert!(p.better(&v("gray"), &v("red")));
        assert!(p.better(&v("red"), &v("yellow")));
        assert!(p.better(&v("gray"), &v("yellow")));
        assert_eq!(p.level(&v("gray")), Some(3));
    }

    #[test]
    fn missing_others_layer_puts_strangers_at_bottom() {
        let p = Layered::new(vec![Layer::of(["a"]), Layer::of(["b"])]).unwrap();
        assert!(p.better(&v("stranger"), &v("b")));
        assert!(!p.better(&v("b"), &v("stranger")));
        assert!(!p.better(&v("s1"), &v("s2")));
        assert_eq!(p.level(&v("stranger")), Some(3));
    }

    #[test]
    fn rejects_overlapping_layers() {
        let err = Layered::new(vec![Layer::of(["a"]), Layer::of(["a", "b"])]).unwrap_err();
        assert!(matches!(err, CoreError::CarriersNotDisjoint { .. }));
        let err = Layered::new(vec![Layer::Others, Layer::Others]).unwrap_err();
        assert!(matches!(err, CoreError::CarriersNotDisjoint { .. }));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = Layered::new(vec![Layer::of(["a"]), Layer::Others, Layer::of(["x", "y"])]).unwrap();
        let dom: Vec<Value> = ["a", "b", "c", "x", "y"].iter().map(|s| v(s)).collect();
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn single_layer_is_antichain() {
        let p = Layered::new(vec![Layer::Others]).unwrap();
        assert!(!p.better(&v("a"), &v("b")));
        assert_eq!(p.range(), Range::Known(HashSet::new()));
    }
}
