//! Value-level preference combinators: dual, subset, anti-chain, linear
//! sum, disjoint union and intersection (Def. 3, 11, 12) on a single
//! attribute's domain.
//!
//! These are the "technical assembly" constructors of the paper. Linear
//! sum in particular is "a convenient design and proof method for base
//! preference constructors" — the identities `POS = POS-set↔ ⊕ others↔`
//! etc. are verified in `algebra::hierarchy` using these types.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, BaseRef, Range};
use crate::error::CoreError;

/// The anti-chain preference `S↔ = (S, ∅)` (Def. 3b): no value is better
/// than any other.
#[derive(Debug, Clone, Default)]
pub struct AntichainBase;

impl AntichainBase {
    pub fn new() -> Self {
        AntichainBase
    }
}

impl BasePreference for AntichainBase {
    fn name(&self) -> &'static str {
        "ANTICHAIN"
    }

    fn better(&self, _x: &Value, _y: &Value) -> bool {
        false
    }

    fn level(&self, _v: &Value) -> Option<u32> {
        Some(1)
    }

    fn is_top(&self, _v: &Value) -> Option<bool> {
        Some(true)
    }

    fn range(&self) -> Range {
        Range::Known(HashSet::new())
    }
}

/// The dual preference `P∂` (Def. 3c): `x <P∂ y iff y <P x`.
#[derive(Debug, Clone)]
pub struct DualBase {
    inner: BaseRef,
}

impl DualBase {
    pub fn new(inner: BaseRef) -> Self {
        DualBase { inner }
    }

    /// The wrapped preference.
    pub fn inner(&self) -> &BaseRef {
        &self.inner
    }
}

impl BasePreference for DualBase {
    fn name(&self) -> &'static str {
        "DUAL"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.inner.better(y, x)
    }

    fn is_chain(&self) -> bool {
        self.inner.is_chain()
    }

    fn range(&self) -> Range {
        self.inner.range()
    }

    fn params(&self) -> String {
        format!("{}({})∂", self.inner.name(), self.inner.params())
    }
}

/// A subset preference `P⊆` (Def. 3d): `P` restricted to a value set `S`.
#[derive(Debug, Clone)]
pub struct SubsetBase {
    inner: BaseRef,
    allowed: HashSet<Value>,
}

impl SubsetBase {
    pub fn new<I, V>(inner: BaseRef, allowed: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        SubsetBase {
            inner,
            allowed: allowed.into_iter().map(Into::into).collect(),
        }
    }
}

impl BasePreference for SubsetBase {
    fn name(&self) -> &'static str {
        "SUBSET"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.allowed.contains(x) && self.allowed.contains(y) && self.inner.better(x, y)
    }

    fn range(&self) -> Range {
        Range::Known(match self.inner.range() {
            Range::Known(r) => r.intersection(&self.allowed).cloned().collect(),
            Range::Unbounded => self.allowed.clone(),
        })
    }

    fn params(&self) -> String {
        format!(
            "{}({}) on {}",
            self.inner.name(),
            self.inner.params(),
            fmt_value_set(&self.allowed)
        )
    }
}

/// Linear sum `P1 ⊕ P2 ⊕ …` (Def. 12): all values of an earlier summand
/// are better than all values of a later summand; within a summand, that
/// summand's order applies.
///
/// Each summand comes with its *carrier* (the `dom(Ai)` of Def. 12). The
/// carriers must be pairwise disjoint.
#[derive(Debug)]
pub struct LinearSum {
    parts: Vec<(HashSet<Value>, BaseRef)>,
}

impl LinearSum {
    /// Build from `(carrier, preference)` pairs, best carrier first.
    pub fn new(parts: Vec<(HashSet<Value>, BaseRef)>) -> Result<Self, CoreError> {
        let mut seen: HashSet<Value> = HashSet::new();
        for (carrier, _) in &parts {
            for v in carrier {
                if !seen.insert(v.clone()) {
                    return Err(CoreError::CarriersNotDisjoint { witness: v.clone() });
                }
            }
        }
        Ok(LinearSum { parts })
    }

    fn carrier_of(&self, v: &Value) -> Option<usize> {
        self.parts.iter().position(|(c, _)| c.contains(v))
    }
}

impl BasePreference for LinearSum {
    fn name(&self) -> &'static str {
        "LINEAR-SUM"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        match (self.carrier_of(x), self.carrier_of(y)) {
            (Some(i), Some(j)) if i == j => self.parts[i].1.better(x, y),
            // Def. 12: x ∈ dom(A2) ∧ y ∈ dom(A1) makes y better.
            (Some(i), Some(j)) => j < i,
            // Values outside every carrier are outside dom(A): unranked.
            _ => false,
        }
    }

    fn range(&self) -> Range {
        let mut all = HashSet::new();
        for (c, _) in &self.parts {
            all.extend(c.iter().cloned());
        }
        Range::Known(all)
    }

    fn params(&self) -> String {
        let body: Vec<String> = self
            .parts
            .iter()
            .map(|(c, p)| format!("{}({}) on {}", p.name(), p.params(), fmt_value_set(c)))
            .collect();
        body.join(" ⊕ ")
    }
}

/// Disjoint union `P1 + P2` (Def. 11b): `x < y iff x <P1 y ∨ x <P2 y`,
/// requiring `range(<P1) ∩ range(<P2) = ∅` (Def. 4).
#[derive(Debug, Clone)]
pub struct UnionBase {
    left: BaseRef,
    right: BaseRef,
}

impl UnionBase {
    /// Build; fails when the ranges are *provably* overlapping. When a
    /// range is unbounded the caller vouches for disjointness (the paper
    /// uses `+` on constructions that are disjoint by design, Prop. 4b).
    pub fn new(left: BaseRef, right: BaseRef) -> Result<Self, CoreError> {
        if let Some(witness) = left.range().overlap_witness(&right.range()) {
            return Err(CoreError::RangesNotDisjoint { witness });
        }
        Ok(UnionBase { left, right })
    }
}

impl BasePreference for UnionBase {
    fn name(&self) -> &'static str {
        "UNION"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.left.better(x, y) || self.right.better(x, y)
    }

    fn range(&self) -> Range {
        match (self.left.range(), self.right.range()) {
            (Range::Known(a), Range::Known(b)) => Range::Known(a.union(&b).cloned().collect()),
            _ => Range::Unbounded,
        }
    }

    fn params(&self) -> String {
        format!(
            "{}({}) + {}({})",
            self.left.name(),
            self.left.params(),
            self.right.name(),
            self.right.params()
        )
    }
}

/// Intersection `P1 ♦ P2` (Def. 11a): `x < y iff x <P1 y ∧ x <P2 y`.
#[derive(Debug, Clone)]
pub struct InterBase {
    left: BaseRef,
    right: BaseRef,
}

impl InterBase {
    pub fn new(left: BaseRef, right: BaseRef) -> Self {
        InterBase { left, right }
    }
}

impl BasePreference for InterBase {
    fn name(&self) -> &'static str {
        "INTERSECT"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.left.better(x, y) && self.right.better(x, y)
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }

    fn params(&self) -> String {
        format!(
            "{}({}) ♦ {}({})",
            self.left.name(),
            self.left.params(),
            self.right.name(),
            self.right.params()
        )
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::base::{Explicit, Highest, Lowest, Pos};
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    fn set(vals: &[&str]) -> HashSet<Value> {
        vals.iter().map(|s| Value::from(*s)).collect()
    }

    #[test]
    fn antichain_never_ranks() {
        let p = AntichainBase::new();
        assert!(!p.better(&v("a"), &v("b")));
        assert!(!p.better(&v("a"), &v("a")));
    }

    #[test]
    fn dual_swaps_direction() {
        let lowest: BaseRef = Arc::new(Lowest::new());
        let dual = DualBase::new(lowest);
        let highest = Highest::new();
        // HIGHEST ≡ LOWEST∂  (Prop. 3d)
        for x in 0..5 {
            for y in 0..5 {
                assert_eq!(
                    dual.better(&Value::from(x), &Value::from(y)),
                    highest.better(&Value::from(x), &Value::from(y))
                );
            }
        }
        assert!(dual.is_chain());
    }

    #[test]
    fn subset_restricts() {
        let pos: BaseRef = Arc::new(Pos::new(["a"]));
        let p = SubsetBase::new(pos, ["a", "b"]);
        assert!(p.better(&v("b"), &v("a")));
        // "z" is outside S, so no ranking involves it.
        assert!(!p.better(&v("z"), &v("a")));
    }

    #[test]
    fn linear_sum_orders_carriers() {
        // POS behaviour from two anti-chains: {a,b}↔ ⊕ {x,y}↔
        let p = LinearSum::new(vec![
            (set(&["a", "b"]), Arc::new(AntichainBase::new()) as BaseRef),
            (set(&["x", "y"]), Arc::new(AntichainBase::new()) as BaseRef),
        ])
        .unwrap();
        assert!(p.better(&v("x"), &v("a")));
        assert!(!p.better(&v("a"), &v("x")));
        assert!(!p.better(&v("a"), &v("b")));
        assert!(!p.better(&v("x"), &v("y")));
        // outside both carriers: unranked with everything
        assert!(!p.better(&v("zz"), &v("a")));
    }

    #[test]
    fn linear_sum_applies_inner_order() {
        let inner: BaseRef = Arc::new(Explicit::new([("b", "a")]).unwrap());
        let p = LinearSum::new(vec![
            (set(&["a", "b"]), inner),
            (set(&["z"]), Arc::new(AntichainBase::new()) as BaseRef),
        ])
        .unwrap();
        assert!(p.better(&v("b"), &v("a"))); // inner order within carrier 0
        assert!(p.better(&v("z"), &v("b"))); // carrier 0 beats carrier 1
    }

    #[test]
    fn linear_sum_rejects_overlap() {
        let r = LinearSum::new(vec![
            (set(&["a"]), Arc::new(AntichainBase::new()) as BaseRef),
            (set(&["a", "b"]), Arc::new(AntichainBase::new()) as BaseRef),
        ]);
        assert!(matches!(r, Err(CoreError::CarriersNotDisjoint { .. })));
    }

    #[test]
    fn union_checks_provable_overlap() {
        let e1: BaseRef = Arc::new(Explicit::fragment([("a", "b")]).unwrap());
        let e2: BaseRef = Arc::new(Explicit::fragment([("a", "c")]).unwrap());
        assert!(matches!(
            UnionBase::new(e1, e2),
            Err(CoreError::RangesNotDisjoint { .. })
        ));
        let e3: BaseRef = Arc::new(Explicit::fragment([("a", "b")]).unwrap());
        let e4: BaseRef = Arc::new(Explicit::fragment([("x", "y")]).unwrap());
        let u = UnionBase::new(e3, e4).unwrap();
        assert!(u.better(&v("a"), &v("b")));
        assert!(u.better(&v("x"), &v("y")));
        assert!(!u.better(&v("a"), &v("y")));
    }

    #[test]
    fn completed_explicit_has_unbounded_range() {
        // The completion rule ranks *every* outside value, so the range is
        // the whole domain and the union check cannot prove disjointness.
        let e1: BaseRef = Arc::new(Explicit::new([("a", "b")]).unwrap());
        let e2: BaseRef = Arc::new(Explicit::new([("x", "y")]).unwrap());
        assert!(UnionBase::new(e1.clone(), e2).is_ok()); // caller vouches
        assert_eq!(e1.range(), Range::Unbounded);
    }

    #[test]
    fn intersection_requires_both() {
        let l: BaseRef = Arc::new(Lowest::new());
        let h: BaseRef = Arc::new(Highest::new());
        let p = InterBase::new(l.clone(), h);
        // P ♦ P∂ ≡ anti-chain  (Prop. 3g)
        assert!(!p.better(&Value::from(1), &Value::from(2)));
        assert!(!p.better(&Value::from(2), &Value::from(1)));
        let p2 = InterBase::new(l.clone(), l);
        assert!(p2.better(&Value::from(2), &Value::from(1)));
    }

    #[test]
    fn combinators_are_spos() {
        let dom: Vec<Value> = ["a", "b", "x", "y", "zz"].iter().map(|s| v(s)).collect();
        let ls = LinearSum::new(vec![
            (set(&["a", "b"]), Arc::new(AntichainBase::new()) as BaseRef),
            (set(&["x", "y"]), Arc::new(AntichainBase::new()) as BaseRef),
        ])
        .unwrap();
        check_spo_values(&ls, &dom).unwrap();

        let e3: BaseRef = Arc::new(Explicit::fragment([("a", "b")]).unwrap());
        let e4: BaseRef = Arc::new(Explicit::fragment([("x", "y")]).unwrap());
        let u = UnionBase::new(e3, e4).unwrap();
        check_spo_values(&u, &dom).unwrap();
    }
}
