//! EXPLICIT preference (Def. 6e): a hand-crafted finite better-than graph.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pref_relation::Value;

use super::{BasePreference, Range};
use crate::error::CoreError;

/// The transitive closure of an EXPLICIT graph, materialized as a dense
/// reachability bitset over vertex *ids* — `n` vertices plus one virtual
/// "outside the graph" id (`n` itself). Cheap to clone (the bit matrix is
/// shared), so evaluators can lift it out of the [`Explicit`] term and
/// run dominance tests on pre-resolved ids with two loads and a mask
/// instead of `Value` clones and hash-set probes.
#[derive(Debug, Clone)]
pub struct Reachability {
    n: usize,
    /// Words per row of the bit matrix.
    stride: usize,
    /// Row-major bits: vertex `i` row holds a set bit at column `j` iff
    /// `i <E j` (j is better than i).
    bits: Arc<[u64]>,
    /// Fragment orders do not rank outside values below the graph.
    fragment: bool,
}

impl Reachability {
    /// Number of graph vertices; `vertex_count()` doubles as the id of
    /// the virtual outside-the-graph vertex.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The id callers must use for values that are not graph vertices.
    pub fn outside_id(&self) -> usize {
        self.n
    }

    #[inline]
    fn bit(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.stride + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// Strict better-than on vertex ids (Def. 6e): `b` beats `a` iff the
    /// closure has the edge, or `a` is outside a completed graph and `b`
    /// is inside.
    #[inline]
    pub fn better_ids(&self, a: usize, b: usize) -> bool {
        if b >= self.n {
            false
        } else if a >= self.n {
            !self.fragment
        } else {
            self.bit(a, b)
        }
    }
}

/// `EXPLICIT(A, EXPLICIT-graph{(val1, val2), …})`.
///
/// Each pair `(a, b)` states `a <E b` ("b is better than a"); the induced
/// order is the transitive closure of the pairs. Every value occurring in
/// the graph is better than every value outside it:
///
/// ```text
/// x <P y  iff  x <E y  ∨  (x ∉ range(<E) ∧ y ∈ range(<E))
/// ```
///
/// The graph must be acyclic. Isolated vertices may be added with
/// [`Explicit::with_vertices`] — needed to express, e.g., POS/POS as an
/// EXPLICIT preference when one layer would otherwise have no edges
/// (the sub-constructor hierarchy of §3.4).
#[derive(Debug, Clone)]
pub struct Explicit {
    /// Pairs `(worse, better)` as given (pre-closure), for display.
    edges: Vec<(Value, Value)>,
    /// All vertices (edge endpoints plus explicitly added ones).
    vertices: Vec<Value>,
    /// Vertex → dense id, the key into the reachability bitset.
    index: HashMap<Value, usize>,
    /// Transitive closure as a reachability bitset over vertex ids.
    reach: Reachability,
    /// Longest-path level (1 = maximal) of each vertex within the graph.
    levels: HashMap<Value, u32>,
    /// Fragment mode: just `E = (V, <E)` without the
    /// "outside values are worse" completion of Def. 6e.
    fragment: bool,
}

impl Explicit {
    /// Build from better-than pairs `(worse, better)`. Fails on cycles.
    pub fn new<I, V, W>(edges: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = (V, W)>,
        V: Into<Value>,
        W: Into<Value>,
    {
        Explicit::with_vertices(edges, Vec::<Value>::new())
    }

    /// Build the *bare* explicit order `E = (V, <E)` of Def. 6e — the
    /// transitive closure of the pairs with NO ranking of outside values.
    /// Its range is exactly `V`, which makes fragments the building block
    /// for provably disjoint unions (Def. 11b).
    pub fn fragment<I, V, W>(edges: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = (V, W)>,
        V: Into<Value>,
        W: Into<Value>,
    {
        let mut e = Explicit::with_vertices(edges, Vec::<Value>::new())?;
        e.fragment = true;
        e.reach.fragment = true;
        Ok(e)
    }

    /// Build from pairs plus extra isolated vertices.
    pub fn with_vertices<I, V, W, J, U>(edges: I, extra: J) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = (V, W)>,
        V: Into<Value>,
        W: Into<Value>,
        J: IntoIterator<Item = U>,
        U: Into<Value>,
    {
        let edges: Vec<(Value, Value)> = edges
            .into_iter()
            .map(|(a, b)| (a.into(), b.into()))
            .collect();

        // Collect vertices, preserving first-seen order for stable display.
        let mut vertices: Vec<Value> = Vec::new();
        let mut seen: HashSet<Value> = HashSet::new();
        let add = |v: &Value, vertices: &mut Vec<Value>, seen: &mut HashSet<Value>| {
            if seen.insert(v.clone()) {
                vertices.push(v.clone());
            }
        };
        for (a, b) in &edges {
            add(a, &mut vertices, &mut seen);
            add(b, &mut vertices, &mut seen);
        }
        for v in extra {
            let v = v.into();
            add(&v, &mut vertices, &mut seen);
        }

        let n = vertices.len();
        let idx: HashMap<&Value, usize> =
            vertices.iter().enumerate().map(|(i, v)| (v, i)).collect();

        // Adjacency of the raw pairs; reachability by Floyd–Warshall
        // (graphs are "handcrafted", so n is small by construction).
        let mut reach = vec![false; n * n];
        for (a, b) in &edges {
            reach[idx[a] * n + idx[b]] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i * n + k] {
                    for j in 0..n {
                        if reach[k * n + j] {
                            reach[i * n + j] = true;
                        }
                    }
                }
            }
        }
        for (i, v) in vertices.iter().enumerate() {
            if reach[i * n + i] {
                return Err(CoreError::CyclicExplicit {
                    on_cycle: v.clone(),
                });
            }
        }

        // Pack the closure into a row-major bitset: dominance tests (and
        // the score-matrix EXPLICIT backend) become two loads and a mask.
        let stride = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * stride];
        for i in 0..n {
            for j in 0..n {
                if reach[i * n + j] {
                    bits[i * stride + j / 64] |= 1u64 << (j % 64);
                }
            }
        }

        // Level of vertex i = 1 + max(level of all j better than i), where
        // "better than i" = reach[i][j]. Maximal vertices are level 1.
        let mut levels = HashMap::with_capacity(n);
        // Iterate to a fixpoint; n passes suffice since levels only grow
        // along edges of a DAG.
        let mut lv = vec![1u32; n];
        for _ in 0..n {
            let mut changed = false;
            for i in 0..n {
                let mut best = 1;
                for j in 0..n {
                    if reach[i * n + j] {
                        best = best.max(lv[j] + 1);
                    }
                }
                if lv[i] != best {
                    lv[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (i, v) in vertices.iter().enumerate() {
            levels.insert(v.clone(), lv[i]);
        }

        let index: HashMap<Value, usize> = vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();

        Ok(Explicit {
            edges,
            vertices,
            index,
            reach: Reachability {
                n,
                stride,
                bits: bits.into(),
                fragment: false,
            },
            levels,
            fragment: false,
        })
    }

    /// The vertices of the graph (= `range(<E)` plus isolated vertices).
    pub fn vertices(&self) -> &[Value] {
        &self.vertices
    }

    /// Is `v` a vertex of the explicit graph?
    pub fn in_graph(&self, v: &Value) -> bool {
        self.index.contains_key(v)
    }

    /// Number of graph vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The dense id of `v` in the reachability bitset, `None` for values
    /// outside the graph (use [`Reachability::outside_id`] for those).
    pub fn vertex_index(&self, v: &Value) -> Option<usize> {
        self.index.get(v).copied()
    }

    /// A shared handle to the materialized transitive closure — the
    /// input of the score-matrix EXPLICIT backend, which resolves every
    /// row's value to a vertex id once and then runs all O(n²) dominance
    /// tests on the bitset.
    pub fn reachability(&self) -> Reachability {
        self.reach.clone()
    }

    /// The raw edges `(worse, better)`.
    pub fn edges(&self) -> &[(Value, Value)] {
        &self.edges
    }

    /// The deepest level of the graph itself.
    fn max_graph_level(&self) -> u32 {
        self.levels.values().copied().max().unwrap_or(0)
    }
}

impl BasePreference for Explicit {
    fn name(&self) -> &'static str {
        if self.fragment {
            "EXPLICIT-FRAGMENT"
        } else {
            "EXPLICIT"
        }
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        let id = |v: &Value| self.vertex_index(v).unwrap_or(self.reach.outside_id());
        self.reach.better_ids(id(x), id(y))
    }

    fn as_explicit(&self) -> Option<&Explicit> {
        Some(self)
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(match self.levels.get(v) {
            Some(&l) => l,
            // Completed EXPLICIT: outside values sit below every graph
            // value. Fragment: outside values are unranked, hence maximal.
            None if !self.fragment => self.max_graph_level() + 1,
            None => 1,
        })
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(self.level(v) == Some(1))
    }

    fn range(&self) -> Range {
        if self.fragment || self.vertices.is_empty() {
            Range::Known(self.vertices.iter().cloned().collect())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        let body: Vec<String> = self
            .edges
            .iter()
            .map(|(a, b)| format!("({a}, {b})"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    /// Example 1: EXPLICIT(Color, {(green, yellow), (green, red), (yellow, white)})
    /// over dom(Color) = {white, red, yellow, green, brown, black}.
    fn example1() -> Explicit {
        Explicit::new([("green", "yellow"), ("green", "red"), ("yellow", "white")]).unwrap()
    }

    #[test]
    fn example1_levels() {
        let p = example1();
        // "white and red are maximal at level 1, yellow is at level 2,
        //  green is at level 3 and the other values brown and black are
        //  minimal at level 4."
        assert_eq!(p.level(&v("white")), Some(1));
        assert_eq!(p.level(&v("red")), Some(1));
        assert_eq!(p.level(&v("yellow")), Some(2));
        assert_eq!(p.level(&v("green")), Some(3));
        assert_eq!(p.level(&v("brown")), Some(4));
        assert_eq!(p.level(&v("black")), Some(4));
    }

    #[test]
    fn transitive_closure() {
        let p = example1();
        // green < yellow and yellow < white imply green < white.
        assert!(p.better(&v("green"), &v("white")));
        // red and white are unranked (no path).
        assert!(!p.better(&v("red"), &v("white")));
        assert!(!p.better(&v("white"), &v("red")));
    }

    #[test]
    fn outside_values_are_worse_than_graph_values() {
        let p = example1();
        assert!(p.better(&v("brown"), &v("green")));
        assert!(p.better(&v("black"), &v("white")));
        assert!(!p.better(&v("green"), &v("brown")));
        // two outside values are unranked
        assert!(!p.better(&v("brown"), &v("black")));
    }

    #[test]
    fn rejects_cycles() {
        let err = Explicit::new([("a", "b"), ("b", "c"), ("c", "a")]).unwrap_err();
        assert!(matches!(err, CoreError::CyclicExplicit { .. }));
        // self-loop is a 1-cycle
        assert!(Explicit::new([("a", "a")]).is_err());
    }

    #[test]
    fn is_strict_partial_order() {
        let p = example1();
        let dom: Vec<Value> = ["white", "red", "yellow", "green", "brown", "black"]
            .iter()
            .map(|s| v(s))
            .collect();
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn isolated_vertices_rank_above_outsiders() {
        let p = Explicit::with_vertices([("b", "a")], ["solo"]).unwrap();
        assert!(p.better(&v("outside"), &v("solo")));
        assert!(!p.better(&v("solo"), &v("a")));
        assert_eq!(p.level(&v("solo")), Some(1));
        assert_eq!(p.level(&v("outside")), Some(3));
    }

    #[test]
    fn reachability_bitset_agrees_with_value_level_better() {
        for p in [
            example1(),
            Explicit::fragment([("a", "b"), ("b", "c")]).unwrap(),
            Explicit::with_vertices([("b", "a")], ["solo"]).unwrap(),
        ] {
            let reach = p.reachability();
            assert_eq!(reach.vertex_count(), p.vertex_count());
            let mut dom: Vec<Value> = p.vertices().to_vec();
            dom.push(v("outside-1"));
            dom.push(v("outside-2"));
            let id = |x: &Value| p.vertex_index(x).unwrap_or(reach.outside_id());
            for x in &dom {
                for y in &dom {
                    assert_eq!(
                        reach.better_ids(id(x), id(y)),
                        p.better(x, y),
                        "bitset diverged on ({x}, {y})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph_is_antichain() {
        let p = Explicit::new(Vec::<(&str, &str)>::new()).unwrap();
        assert!(!p.better(&v("a"), &v("b")));
        assert_eq!(p.level(&v("a")), Some(1));
    }
}
