//! AROUND preference (Def. 7a): prefer values closest to a target.

use pref_relation::Value;

use super::{BasePreference, Range};

/// `AROUND(A, z)`: `x <P y  iff  distance(x, z) > distance(y, z)` with
/// `distance(v, z) = abs(v − z)`.
///
/// Values at equal distance from `z` (e.g. `z−5` and `z+5`) are unranked.
/// Applies to any ordered axis type — numbers and dates.
#[derive(Debug, Clone)]
pub struct Around {
    z: Value,
    z_ord: f64,
}

impl Around {
    /// Build with target value `z`. `z` must live on the ordered axis
    /// (Int, Float or Date); this is a constructor precondition and panics
    /// otherwise, as there is no meaningful recovery.
    pub fn new(z: impl Into<Value>) -> Self {
        let z = z.into();
        let z_ord = z
            .ordinal()
            .expect("AROUND requires a numeric or date target value");
        Around { z, z_ord }
    }

    /// The target value.
    pub fn target(&self) -> &Value {
        &self.z
    }

    /// `distance(v, z)`; +∞ for values off the ordered axis, so that any
    /// on-axis value beats them (they can never be "closest").
    fn dist(&self, v: &Value) -> f64 {
        match v.ordinal() {
            Some(o) => (o - self.z_ord).abs(),
            None => f64::INFINITY,
        }
    }
}

impl BasePreference for Around {
    fn name(&self) -> &'static str {
        "AROUND"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.dist(x) > self.dist(y)
    }

    fn score(&self, v: &Value) -> Option<f64> {
        Some(-self.dist(v))
    }

    // `better` is exactly "smaller distance", and `dist` is total (off-axis
    // values map to +∞ and tie among themselves), so the score doubles as
    // a dominance key.
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        Some(-self.dist(v))
    }

    // Exact inverse of the negated-distance embedding above.
    fn distance_from_key(&self, key: f64) -> Option<f64> {
        Some(-key)
    }

    fn distance(&self, v: &Value) -> Option<f64> {
        Some(self.dist(v))
    }

    fn is_numerical(&self) -> bool {
        true
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(self.dist(v) == 0.0)
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }

    fn params(&self) -> String {
        self.z.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;
    use pref_relation::Date;

    #[test]
    fn closer_is_better() {
        // P3 := AROUND(Horsepower, 100)   (Example 6)
        let p = Around::new(100);
        assert!(p.better(&Value::from(140), &Value::from(110)));
        assert!(p.better(&Value::from(50), &Value::from(95)));
        assert!(!p.better(&Value::from(100), &Value::from(110)));
    }

    #[test]
    fn equal_distance_is_unranked() {
        // "if distance(x, z) = distance(y, z) and x ≠ y, then x and y are
        //  unranked" (Def. 7a)
        let p = Around::new(0);
        assert!(!p.better(&Value::from(-5), &Value::from(5)));
        assert!(!p.better(&Value::from(5), &Value::from(-5)));
    }

    #[test]
    fn works_on_dates() {
        // "AROUND preferences ... also applicable to other ordered SQL
        //  types like Date"
        let p = Around::new(Date::parse("2001/11/23").unwrap());
        let near = Value::from(Date::parse("2001/11/24").unwrap());
        let far = Value::from(Date::parse("2001/12/24").unwrap());
        assert!(p.better(&far, &near));
        assert_eq!(p.distance(&near), Some(1.0));
    }

    #[test]
    fn mixes_ints_and_floats() {
        let p = Around::new(10.0);
        assert!(p.better(&Value::from(20), &Value::from(10.5)));
    }

    #[test]
    fn off_axis_values_lose() {
        let p = Around::new(0);
        assert!(p.better(&Value::from("zero"), &Value::from(1_000_000)));
        assert!(!p.better(&Value::from(0), &Value::from("zero")));
        // two off-axis values are unranked
        assert!(!p.better(&Value::from("a"), &Value::from("b")));
    }

    #[test]
    fn score_is_negated_distance() {
        let p = Around::new(100);
        assert_eq!(p.score(&Value::from(90)), Some(-10.0));
        assert_eq!(p.score(&Value::from(100)), Some(0.0));
        assert!(p.is_numerical());
    }

    #[test]
    fn is_strict_partial_order() {
        let p = Around::new(0);
        let dom: Vec<Value> = vec![
            Value::from(-6),
            Value::from(-5),
            Value::from(0),
            Value::from(5),
            Value::from(6),
            Value::from("off-axis"),
            Value::Null,
        ];
        check_spo_values(&p, &dom).unwrap();
    }
}
