//! BETWEEN preference (Def. 7b): prefer values inside an interval, else
//! values closest to its boundaries.

use pref_relation::Value;

use super::{BasePreference, Range};
use crate::error::CoreError;

/// `BETWEEN(A, [low, up])`:
///
/// ```text
/// distance(v, [low, up]) = 0            if v ∈ [low, up]
///                        = low − v      if v < low
///                        = v − up       if v > up
/// x <P y  iff  distance(x) > distance(y)
/// ```
#[derive(Debug, Clone)]
pub struct Between {
    low: Value,
    up: Value,
    low_ord: f64,
    up_ord: f64,
}

impl Between {
    /// Build with interval bounds; requires `low <= up` on the ordered axis.
    pub fn new(low: impl Into<Value>, up: impl Into<Value>) -> Result<Self, CoreError> {
        let low = low.into();
        let up = up.into();
        let (low_ord, up_ord) = match (low.ordinal(), up.ordinal()) {
            (Some(a), Some(b)) if a <= b => (a, b),
            _ => {
                return Err(CoreError::EmptyInterval { low, up });
            }
        };
        Ok(Between {
            low,
            up,
            low_ord,
            up_ord,
        })
    }

    /// The interval bounds.
    pub fn bounds(&self) -> (&Value, &Value) {
        (&self.low, &self.up)
    }

    fn dist(&self, v: &Value) -> f64 {
        match v.ordinal() {
            Some(o) if o < self.low_ord => self.low_ord - o,
            Some(o) if o > self.up_ord => o - self.up_ord,
            Some(_) => 0.0,
            None => f64::INFINITY,
        }
    }
}

impl BasePreference for Between {
    fn name(&self) -> &'static str {
        "BETWEEN"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.dist(x) > self.dist(y)
    }

    fn score(&self, v: &Value) -> Option<f64> {
        Some(-self.dist(v))
    }

    // As for AROUND: `better` is exactly "smaller (total) distance".
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        Some(-self.dist(v))
    }

    // Exact inverse of the negated-distance embedding above.
    fn distance_from_key(&self, key: f64) -> Option<f64> {
        Some(-key)
    }

    fn distance(&self, v: &Value) -> Option<f64> {
        Some(self.dist(v))
    }

    fn is_numerical(&self) -> bool {
        true
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(self.dist(v) == 0.0)
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }

    fn params(&self) -> String {
        format!("[{}, {}]", self.low, self.up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    #[test]
    fn inside_beats_outside() {
        let p = Between::new(10, 20).unwrap();
        assert!(p.better(&Value::from(25), &Value::from(15)));
        assert!(p.better(&Value::from(5), &Value::from(10)));
        assert!(!p.better(&Value::from(15), &Value::from(25)));
    }

    #[test]
    fn all_inside_values_are_unranked() {
        let p = Between::new(10, 20).unwrap();
        assert!(!p.better(&Value::from(10), &Value::from(20)));
        assert!(!p.better(&Value::from(20), &Value::from(10)));
        assert_eq!(p.distance(&Value::from(12)), Some(0.0));
    }

    #[test]
    fn boundary_distance() {
        let p = Between::new(10, 20).unwrap();
        assert_eq!(p.distance(&Value::from(7)), Some(3.0));
        assert_eq!(p.distance(&Value::from(22)), Some(2.0));
        // 7 (dist 3) is worse than 22 (dist 2)
        assert!(p.better(&Value::from(7), &Value::from(22)));
        // equal distance on both sides: unranked
        assert!(!p.better(&Value::from(8), &Value::from(22)));
        assert!(!p.better(&Value::from(22), &Value::from(8)));
    }

    #[test]
    fn degenerate_interval_is_around() {
        // AROUND ≼ BETWEEN if low = up  (§3.4)
        let b = Between::new(5, 5).unwrap();
        let a = super::super::Around::new(5);
        for x in -10..=10 {
            for y in -10..=10 {
                assert_eq!(
                    b.better(&Value::from(x), &Value::from(y)),
                    a.better(&Value::from(x), &Value::from(y)),
                    "x={x}, y={y}"
                );
            }
        }
    }

    #[test]
    fn rejects_inverted_interval() {
        assert!(matches!(
            Between::new(20, 10),
            Err(CoreError::EmptyInterval { .. })
        ));
        assert!(Between::new("a", "b").is_err());
    }

    #[test]
    fn is_strict_partial_order() {
        let p = Between::new(0, 10).unwrap();
        let dom: Vec<Value> = vec![
            Value::from(-5),
            Value::from(0),
            Value::from(5),
            Value::from(10),
            Value::from(15),
            Value::from("off"),
        ];
        check_spo_values(&p, &dom).unwrap();
    }
}
