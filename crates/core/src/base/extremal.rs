//! LOWEST and HIGHEST preferences (Def. 7c): chains preferring the
//! smallest / largest value.

use std::cmp::Ordering;

use pref_relation::Value;

use super::{ordinal_cmp, BasePreference, Range};

/// `LOWEST(A)`: `x <P y  iff  x > y` — a chain.
#[derive(Debug, Clone, Default)]
pub struct Lowest;

/// `HIGHEST(A)`: `x <P y  iff  x < y` — a chain.
#[derive(Debug, Clone, Default)]
pub struct Highest;

impl Lowest {
    pub fn new() -> Self {
        Lowest
    }
}

impl Highest {
    pub fn new() -> Self {
        Highest
    }
}

impl BasePreference for Lowest {
    fn name(&self) -> &'static str {
        "LOWEST"
    }

    // `max(P)` is empty over the unbounded numeric domain: no value is a
    // "dream value", matching the paper's observation that perfect matches
    // need not exist.
    fn is_top(&self, _v: &Value) -> Option<bool> {
        Some(false)
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        ordinal_cmp(x, y) == Some(Ordering::Greater)
    }

    fn score(&self, v: &Value) -> Option<f64> {
        v.ordinal().map(|o| -o)
    }

    // Only on the ordered axis: off-axis values compare by their natural
    // per-type order (see `ordinal_cmp`), which has no f64 embedding, so
    // they make materialization fall back to the generic path. `-0.0` is
    // also rejected: the chain ranks it strictly against `+0.0` (via
    // `total_cmp`), which plain `<` on keys cannot express.
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        v.ordinal()
            .filter(|o| !(*o == 0.0 && o.is_sign_negative()))
            .map(|o| -o)
    }

    fn is_numerical(&self) -> bool {
        true
    }

    fn is_chain(&self) -> bool {
        true
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }
}

impl BasePreference for Highest {
    fn name(&self) -> &'static str {
        "HIGHEST"
    }

    fn is_top(&self, _v: &Value) -> Option<bool> {
        Some(false)
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        ordinal_cmp(x, y) == Some(Ordering::Less)
    }

    fn score(&self, v: &Value) -> Option<f64> {
        v.ordinal()
    }

    // See `Lowest::dominance_key` for the off-axis and `-0.0` caveats.
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        v.ordinal().filter(|o| !(*o == 0.0 && o.is_sign_negative()))
    }

    fn is_numerical(&self) -> bool {
        true
    }

    fn is_chain(&self) -> bool {
        true
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;
    use pref_relation::Date;

    #[test]
    fn lowest_prefers_small() {
        let p = Lowest::new();
        assert!(p.better(&Value::from(40_000), &Value::from(20_000)));
        assert!(!p.better(&Value::from(20_000), &Value::from(40_000)));
        assert!(!p.better(&Value::from(5), &Value::from(5)));
    }

    #[test]
    fn highest_prefers_large() {
        // P6 := HIGHEST(Year-of-construction)   (Example 6)
        let p = Highest::new();
        assert!(p.better(&Value::from(1995), &Value::from(2001)));
        assert!(!p.better(&Value::from(2001), &Value::from(1995)));
    }

    #[test]
    fn chains_on_numeric_domains() {
        // Def. 3a: every pair of distinct values is ranked.
        let p = Lowest::new();
        let dom: Vec<Value> = (0..6).map(Value::from).collect();
        for x in &dom {
            for y in &dom {
                if x != y {
                    assert!(p.better(x, y) ^ p.better(y, x));
                }
            }
        }
        assert!(p.is_chain());
    }

    #[test]
    fn works_on_dates_and_mixed_numerics() {
        let p = Highest::new();
        let d1 = Value::from(Date::parse("2000/01/01").unwrap());
        let d2 = Value::from(Date::parse("2001/01/01").unwrap());
        assert!(p.better(&d1, &d2));
        assert!(p.better(&Value::from(1), &Value::from(1.5)));
    }

    #[test]
    fn scores_mirror_order() {
        let h = Highest::new();
        let l = Lowest::new();
        assert!(h.score(&Value::from(10)) > h.score(&Value::from(5)));
        assert!(l.score(&Value::from(5)) > l.score(&Value::from(10)));
        assert_eq!(l.score(&Value::from("x")), None);
    }

    #[test]
    fn is_strict_partial_order_with_odd_values() {
        let dom: Vec<Value> = vec![
            Value::from(-1),
            Value::from(0),
            Value::from(2.5),
            Value::from("str"),
            Value::Null,
        ];
        check_spo_values(&Lowest::new(), &dom).unwrap();
        check_spo_values(&Highest::new(), &dom).unwrap();
    }
}
