//! POS/POS preference (Def. 6d): favorites, then second-best alternatives,
//! then everything else.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, Range};
use crate::error::CoreError;

/// `POS/POS(A, POS1-set; POS2-set)`:
///
/// ```text
/// x <P y  iff  (x ∈ POS2 ∧ y ∈ POS1)
///           ∨  (x ∉ POS1 ∧ x ∉ POS2 ∧ y ∈ POS2)
///           ∨  (x ∉ POS1 ∧ x ∉ POS2 ∧ y ∈ POS1)
/// ```
///
/// POS1 values are maximal (level 1), POS2 at level 2, all others level 3.
/// The sets must be disjoint.
#[derive(Debug, Clone)]
pub struct PosPos {
    pos1: HashSet<Value>,
    pos2: HashSet<Value>,
}

impl PosPos {
    /// Build from favorites and second-best alternatives; sets must be
    /// disjoint.
    pub fn new<I, J, V, W>(pos1: I, pos2: J) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = V>,
        J: IntoIterator<Item = W>,
        V: Into<Value>,
        W: Into<Value>,
    {
        let pos1: HashSet<Value> = pos1.into_iter().map(Into::into).collect();
        let pos2: HashSet<Value> = pos2.into_iter().map(Into::into).collect();
        if let Some(witness) = pos1.intersection(&pos2).next() {
            return Err(CoreError::OverlappingSets {
                constructor: "POS/POS",
                witness: witness.clone(),
            });
        }
        Ok(PosPos { pos1, pos2 })
    }

    /// The favorite values.
    pub fn pos1_set(&self) -> &HashSet<Value> {
        &self.pos1
    }

    /// The second-best alternatives.
    pub fn pos2_set(&self) -> &HashSet<Value> {
        &self.pos2
    }
}

impl BasePreference for PosPos {
    fn name(&self) -> &'static str {
        "POS/POS"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        let x1 = self.pos1.contains(x);
        let x2 = self.pos2.contains(x);
        let y1 = self.pos1.contains(y);
        let y2 = self.pos2.contains(y);
        let x_other = !x1 && !x2;
        (x2 && y1) || (x_other && (y1 || y2))
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(if self.pos1.contains(v) {
            1
        } else if self.pos2.contains(v) {
            2
        } else {
            3
        })
    }

    // Level-based orders embed as negated levels (level 1 = best).
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        self.level(v).map(|l| -f64::from(l))
    }

    // Exact inverse of the negated-level embedding above.
    fn level_from_key(&self, key: f64) -> Option<u32> {
        Some((-key) as u32)
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(if !self.pos1.is_empty() {
            self.pos1.contains(v)
        } else if !self.pos2.is_empty() {
            self.pos2.contains(v)
        } else {
            true
        })
    }

    fn range(&self) -> Range {
        if self.pos1.is_empty() && self.pos2.is_empty() {
            Range::Known(HashSet::new())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        format!(
            "{}; {}",
            fmt_value_set(&self.pos1),
            fmt_value_set(&self.pos2)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    fn paper_example() -> PosPos {
        // P := POS/POS(Category, POS1{cabriolet}; POS2{roadster})  (Example 1)
        PosPos::new(["cabriolet"], ["roadster"]).unwrap()
    }

    #[test]
    fn three_tier_order() {
        let p = paper_example();
        assert!(p.better(&v("roadster"), &v("cabriolet")));
        assert!(p.better(&v("sedan"), &v("roadster")));
        assert!(p.better(&v("sedan"), &v("cabriolet")));
        assert!(!p.better(&v("cabriolet"), &v("roadster")));
        assert!(!p.better(&v("roadster"), &v("sedan")));
        assert!(!p.better(&v("sedan"), &v("van")));
    }

    #[test]
    fn levels_match_def6d() {
        let p = paper_example();
        assert_eq!(p.level(&v("cabriolet")), Some(1));
        assert_eq!(p.level(&v("roadster")), Some(2));
        assert_eq!(p.level(&v("sedan")), Some(3));
    }

    #[test]
    fn rejects_overlap() {
        assert!(matches!(
            PosPos::new(["a"], ["a", "b"]),
            Err(CoreError::OverlappingSets { .. })
        ));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = paper_example();
        let dom: Vec<Value> = ["cabriolet", "roadster", "sedan", "van"]
            .iter()
            .map(|s| v(s))
            .collect();
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn transitive_across_tiers() {
        // sedan < roadster and roadster < cabriolet imply sedan < cabriolet
        let p = paper_example();
        assert!(p.better(&v("sedan"), &v("roadster")));
        assert!(p.better(&v("roadster"), &v("cabriolet")));
        assert!(p.better(&v("sedan"), &v("cabriolet")));
    }
}
