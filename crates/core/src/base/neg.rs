//! NEG preference (Def. 6b): a desired value should not be one of a set of
//! dislikes; if unavoidable, a disliked value still beats getting nothing.

use std::collections::HashSet;

use pref_relation::Value;

use super::{fmt_value_set, BasePreference, Range};

/// `NEG(A, NEG-set)`: `x <P y  iff  y ∉ NEG-set ∧ x ∈ NEG-set`.
///
/// All non-NEG values are maximal (level 1); NEG values are at level 2.
#[derive(Debug, Clone)]
pub struct Neg {
    neg: HashSet<Value>,
}

impl Neg {
    /// Build from any collection of disliked values.
    pub fn new<I, V>(neg: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Neg {
            neg: neg.into_iter().map(Into::into).collect(),
        }
    }

    /// The NEG-set.
    pub fn neg_set(&self) -> &HashSet<Value> {
        &self.neg
    }
}

impl BasePreference for Neg {
    fn name(&self) -> &'static str {
        "NEG"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        !self.neg.contains(y) && self.neg.contains(x)
    }

    fn level(&self, v: &Value) -> Option<u32> {
        Some(if self.neg.contains(v) { 2 } else { 1 })
    }

    // Level-based orders embed as negated levels (level 1 = best).
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        self.level(v).map(|l| -f64::from(l))
    }

    // Exact inverse of the negated-level embedding above.
    fn level_from_key(&self, key: f64) -> Option<u32> {
        Some((-key) as u32)
    }

    fn is_top(&self, v: &Value) -> Option<bool> {
        Some(!self.neg.contains(v))
    }

    fn range(&self) -> Range {
        if self.neg.is_empty() {
            Range::Known(HashSet::new())
        } else {
            Range::Unbounded
        }
    }

    fn params(&self) -> String {
        fmt_value_set(&self.neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn gray_is_disliked() {
        // P5 := NEG(Color, {gray})   (Example 6)
        let p = Neg::new(["gray"]);
        assert!(p.better(&v("gray"), &v("red")));
        assert!(!p.better(&v("red"), &v("gray")));
        assert!(!p.better(&v("red"), &v("blue")));
        assert!(!p.better(&v("gray"), &v("gray")));
    }

    #[test]
    fn levels() {
        let p = Neg::new(["gray", "brown"]);
        assert_eq!(p.level(&v("gray")), Some(2));
        assert_eq!(p.level(&v("red")), Some(1));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = Neg::new(["x", "y"]);
        let dom: Vec<Value> = ["x", "y", "z", "w"].iter().map(|s| v(s)).collect();
        check_spo_values(&p, &dom).unwrap();
    }
}
