//! SCORE preference (Def. 7d): order induced by an arbitrary scoring
//! function `f: dom(A) → ℝ`.

use std::fmt;
use std::sync::Arc;

use pref_relation::Value;

use super::{BasePreference, Range};

/// The scoring function type. Returning `None` marks a value as off the
/// scoring axis; such values are mapped to `-∞` (they lose against every
/// scored value and are mutually unranked).
pub type ScoreFn = Arc<dyn Fn(&Value) -> Option<f64> + Send + Sync>;

/// `SCORE(A, f)`: `x <P y  iff  f(x) < f(y)`.
///
/// Need not be a chain when `f` is not injective — equal-scored values are
/// unranked (not equivalent!), exactly as in the paper.
///
/// The function carries a `name` used for display and for the syntactic
/// term equality of the rewrite engine; semantically different scoring
/// functions must carry different names.
#[derive(Clone)]
pub struct Score {
    fname: String,
    f: ScoreFn,
}

impl Score {
    /// Build from a named scoring function.
    pub fn new(
        fname: impl Into<String>,
        f: impl Fn(&Value) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        Score {
            fname: fname.into(),
            f: Arc::new(f),
        }
    }

    /// Build from a shared scoring function handle.
    pub fn from_arc(fname: impl Into<String>, f: ScoreFn) -> Self {
        Score {
            fname: fname.into(),
            f,
        }
    }

    /// The scoring function's name.
    pub fn fname(&self) -> &str {
        &self.fname
    }

    /// Evaluate the raw scoring function.
    pub fn eval(&self, v: &Value) -> Option<f64> {
        (self.f)(v)
    }

    fn effective(&self, v: &Value) -> f64 {
        (self.f)(v).unwrap_or(f64::NEG_INFINITY)
    }
}

impl fmt::Debug for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Score").field("fname", &self.fname).finish()
    }
}

impl BasePreference for Score {
    fn name(&self) -> &'static str {
        "SCORE"
    }

    fn better(&self, x: &Value, y: &Value) -> bool {
        self.effective(x) < self.effective(y)
    }

    fn score(&self, v: &Value) -> Option<f64> {
        Some(self.effective(v))
    }

    // Def. 7d *defines* `better` as the effective-score comparison.
    fn dominance_key(&self, v: &Value) -> Option<f64> {
        Some(self.effective(v))
    }

    fn is_numerical(&self) -> bool {
        true
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }

    fn params(&self) -> String {
        self.fname.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo_values;

    /// Example 5's f1: distance(x, 0) — note: *higher* distance scores
    /// higher here, matching the paper where F combines raw distances.
    fn f1() -> Score {
        Score::new("dist0", |v: &Value| v.ordinal().map(|o| o.abs()))
    }

    #[test]
    fn higher_score_is_better() {
        let p = f1();
        assert!(p.better(&Value::from(1), &Value::from(-5)));
        assert!(!p.better(&Value::from(-5), &Value::from(1)));
    }

    #[test]
    fn non_injective_scores_leave_values_unranked() {
        // "P need not be a chain, if the scoring function f is not a
        //  one-to-one mapping" (Def. 7d)
        let p = f1();
        assert!(!p.better(&Value::from(5), &Value::from(-5)));
        assert!(!p.better(&Value::from(-5), &Value::from(5)));
        assert!(!p.is_chain());
    }

    #[test]
    fn unscored_values_lose() {
        let p = f1();
        assert!(p.better(&Value::from("nope"), &Value::from(0)));
        assert!(!p.better(&Value::from("nope"), &Value::from("also nope")));
    }

    #[test]
    fn is_strict_partial_order() {
        let p = f1();
        let dom: Vec<Value> = vec![
            Value::from(-5),
            Value::from(-1),
            Value::from(0),
            Value::from(1),
            Value::from(5),
            Value::from("off"),
        ];
        check_spo_values(&p, &dom).unwrap();
    }

    #[test]
    fn display_uses_function_name() {
        let p = f1();
        assert_eq!(p.params(), "dist0");
        assert!(format!("{p:?}").contains("dist0"));
    }
}
