//! Preference terms (Def. 5): the inductive language of preferences.
//!
//! A [`Pref`] is a term built from base preferences by the paper's
//! constructors: dual `P∂`, Pareto accumulation `P1 ⊗ P2`, prioritised
//! accumulation `P1 & P2`, numerical accumulation `rank(F)(P1, P2)`,
//! intersection `P1 ♦ P2` and disjoint union `P1 + P2`, plus anti-chains
//! `S↔`. Each term denotes a strict partial order over the tuples of
//! `dom(A1 ∪ … ∪ Ak)` (Prop. 1 — machine-checked in the test suite).
//!
//! Terms are plain data: the algebra (`crate::algebra`) rewrites them, the
//! evaluator (`crate::eval`) compiles them against a schema, and
//! `Display` prints them in paper notation.

use std::fmt;
use std::sync::Arc;

use pref_relation::{Attr, AttrSet, Value};

use crate::base::{
    base_eq, Around, BasePreference, BaseRef, Between, Explicit, Highest, Layered, Lowest, Neg,
    Pos, PosNeg, PosPos, Score,
};
use crate::error::CoreError;

/// A base preference bound to an attribute name: the `(A, <P)` of Def. 1
/// for a single attribute.
#[derive(Clone, Debug)]
pub struct BasePref {
    pub attr: Attr,
    pub base: BaseRef,
}

impl BasePref {
    pub fn new(attr: impl Into<Attr>, base: impl BasePreference + 'static) -> Self {
        BasePref {
            attr: attr.into(),
            base: Arc::new(base),
        }
    }

    pub fn from_ref(attr: impl Into<Attr>, base: BaseRef) -> Self {
        BasePref {
            attr: attr.into(),
            base,
        }
    }
}

impl PartialEq for BasePref {
    fn eq(&self, other: &Self) -> bool {
        self.attr == other.attr && base_eq(&self.base, &other.base)
    }
}

impl fmt::Display for BasePref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.base.params();
        if params.is_empty() {
            write!(f, "{}({})", self.base.name(), self.attr)
        } else {
            write!(f, "{}({}; {})", self.base.name(), self.attr, params)
        }
    }
}

/// Shared handle to a combining function implementation.
pub type CombineImpl = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// The multi-attribute combining function `F` of `rank(F)` (Def. 10).
///
/// Carries a name for display and term equality; semantically different
/// combining functions must have different names.
#[derive(Clone)]
pub struct CombineFn {
    name: String,
    f: CombineImpl,
}

impl CombineFn {
    /// Arbitrary named combining function.
    pub fn new(name: impl Into<String>, f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        CombineFn {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// `F(x1, …, xn) = Σ xi`.
    pub fn sum() -> Self {
        CombineFn::new("sum", |xs: &[f64]| xs.iter().sum())
    }

    /// `F(x1, …, xn) = Σ wi·xi` — Example 5 uses `x1 + 2·x2`.
    pub fn weighted_sum(weights: Vec<f64>) -> Self {
        let name = format!(
            "wsum[{}]",
            weights
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        CombineFn::new(name, move |xs: &[f64]| {
            xs.iter().zip(&weights).map(|(x, w)| x * w).sum()
        })
    }

    /// `F = min(x1, …, xn)`.
    pub fn min() -> Self {
        CombineFn::new("min", |xs: &[f64]| {
            xs.iter().copied().fold(f64::INFINITY, f64::min)
        })
    }

    /// `F = max(x1, …, xn)`.
    pub fn max() -> Self {
        CombineFn::new("max", |xs: &[f64]| {
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// The function's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Apply `F`.
    pub fn apply(&self, xs: &[f64]) -> f64 {
        (self.f)(xs)
    }
}

impl fmt::Debug for CombineFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombineFn")
            .field("name", &self.name)
            .finish()
    }
}

impl PartialEq for CombineFn {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

/// A preference term (Def. 5).
///
/// The enum is public so the algebra can pattern-match; prefer the
/// builder functions ([`pos`], [`around`], …) and combinator methods
/// ([`Pref::pareto`], [`Pref::prior`], …) for construction — they enforce
/// the constructors' preconditions.
#[derive(Clone, Debug, PartialEq)]
pub enum Pref {
    /// A base preference (Def. 6/7).
    Base(BasePref),
    /// Anti-chain `S↔` over an attribute set (Def. 3b).
    Antichain(AttrSet),
    /// Dual `P∂` (Def. 3c).
    Dual(Arc<Pref>),
    /// Pareto accumulation `P1 ⊗ … ⊗ Pn` (Def. 8), stored n-ary
    /// (associativity is Prop. 2b).
    Pareto(Vec<Pref>),
    /// Prioritised accumulation `P1 & … & Pn` (Def. 9), stored n-ary
    /// (associativity is Prop. 2c).
    Prior(Vec<Pref>),
    /// Numerical accumulation `rank(F)(P1, …, Pn)` (Def. 10) over
    /// SCORE-family base preferences.
    Rank(CombineFn, Vec<BasePref>),
    /// Intersection aggregation `P1 ♦ P2` (Def. 11a).
    Inter(Arc<Pref>, Arc<Pref>),
    /// Disjoint union aggregation `P1 + P2` (Def. 11b).
    Union(Arc<Pref>, Arc<Pref>),
}

impl Pref {
    // ---- builders for base preferences -------------------------------

    /// Wrap an existing base preference.
    pub fn base(attr: impl Into<Attr>, base: impl BasePreference + 'static) -> Pref {
        Pref::Base(BasePref::new(attr, base))
    }

    /// Wrap a shared base preference handle.
    pub fn base_ref(attr: impl Into<Attr>, base: BaseRef) -> Pref {
        Pref::Base(BasePref::from_ref(attr, base))
    }

    // ---- combinators ---------------------------------------------------

    /// Dual preference `P∂`.
    pub fn dual(self) -> Pref {
        Pref::Dual(Arc::new(self))
    }

    /// Pareto accumulation `self ⊗ other` ("equally important").
    /// Flattens n-ary chains, which is sound by associativity (Prop. 2b).
    pub fn pareto(self, other: Pref) -> Pref {
        match (self, other) {
            (Pref::Pareto(mut a), Pref::Pareto(b)) => {
                a.extend(b);
                Pref::Pareto(a)
            }
            (Pref::Pareto(mut a), b) => {
                a.push(b);
                Pref::Pareto(a)
            }
            (a, Pref::Pareto(mut b)) => {
                b.insert(0, a);
                Pref::Pareto(b)
            }
            (a, b) => Pref::Pareto(vec![a, b]),
        }
    }

    /// Prioritised accumulation `self & other` ("self is more important").
    /// Flattens n-ary chains, sound by associativity (Prop. 2c).
    pub fn prior(self, other: Pref) -> Pref {
        match (self, other) {
            (Pref::Prior(mut a), Pref::Prior(b)) => {
                a.extend(b);
                Pref::Prior(a)
            }
            (Pref::Prior(mut a), b) => {
                a.push(b);
                Pref::Prior(a)
            }
            (a, Pref::Prior(mut b)) => {
                b.insert(0, a);
                Pref::Prior(b)
            }
            (a, b) => Pref::Prior(vec![a, b]),
        }
    }

    /// Intersection aggregation `self ♦ other`; both operands must act on
    /// the same attribute set (Def. 11).
    pub fn intersect(self, other: Pref) -> Result<Pref, CoreError> {
        if self.attributes() != other.attributes() {
            return Err(CoreError::AttrSetMismatch {
                constructor: "♦",
                left: self.attributes().to_string(),
                right: other.attributes().to_string(),
            });
        }
        Ok(Pref::Inter(Arc::new(self), Arc::new(other)))
    }

    /// Disjoint union aggregation `self + other`; both operands must act
    /// on the same attribute set (Def. 11) and have disjoint ranges
    /// (Def. 4) — range disjointness on tuple domains is not decidable in
    /// general, so it is the caller's obligation, as in the paper's own
    /// use (Prop. 4b builds unions that are disjoint by construction).
    pub fn disjoint_union(self, other: Pref) -> Result<Pref, CoreError> {
        if self.attributes() != other.attributes() {
            return Err(CoreError::AttrSetMismatch {
                constructor: "+",
                left: self.attributes().to_string(),
                right: other.attributes().to_string(),
            });
        }
        Ok(Pref::Union(Arc::new(self), Arc::new(other)))
    }

    /// Numerical accumulation `rank(F)(P1, …, Pn)`. Operands must be
    /// SCORE-family base preferences — possibly via constructor
    /// substitutability (AROUND, BETWEEN, LOWEST, HIGHEST qualify, §3.4).
    pub fn rank(combine: CombineFn, inputs: Vec<Pref>) -> Result<Pref, CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::EmptyCombination {
                constructor: "rank(F)",
            });
        }
        let mut bases = Vec::with_capacity(inputs.len());
        for p in inputs {
            match p {
                Pref::Base(b) if b.base.is_numerical() => bases.push(b),
                other => {
                    return Err(CoreError::NotScorable {
                        term: other.to_string(),
                    })
                }
            }
        }
        Ok(Pref::Rank(combine, bases))
    }

    /// n-ary Pareto accumulation.
    pub fn pareto_all(prefs: Vec<Pref>) -> Result<Pref, CoreError> {
        match prefs.len() {
            0 => Err(CoreError::EmptyCombination { constructor: "⊗" }),
            1 => Ok(prefs.into_iter().next().expect("len checked")),
            _ => Ok(Pref::Pareto(prefs)),
        }
    }

    /// n-ary prioritised accumulation.
    pub fn prior_all(prefs: Vec<Pref>) -> Result<Pref, CoreError> {
        match prefs.len() {
            0 => Err(CoreError::EmptyCombination { constructor: "&" }),
            1 => Ok(prefs.into_iter().next().expect("len checked")),
            _ => Ok(Pref::Prior(prefs)),
        }
    }

    // ---- structure -----------------------------------------------------

    /// The attribute set `A` of the preference `(A, <P)`.
    pub fn attributes(&self) -> AttrSet {
        match self {
            Pref::Base(b) => AttrSet::single(b.attr.clone()),
            Pref::Antichain(a) => a.clone(),
            Pref::Dual(p) => p.attributes(),
            Pref::Pareto(ps) | Pref::Prior(ps) => ps
                .iter()
                .fold(AttrSet::empty(), |acc, p| acc.union(&p.attributes())),
            Pref::Rank(_, bs) => AttrSet::new(bs.iter().map(|b| b.attr.clone())),
            Pref::Inter(l, r) | Pref::Union(l, r) => l.attributes().union(&r.attributes()),
        }
    }

    /// Is the denoted order certainly a chain (total order) on its
    /// domain? Conservative: `false` when unknown. Used by Prop. 11.
    pub fn is_chain(&self) -> bool {
        match self {
            Pref::Base(b) => b.base.is_chain(),
            Pref::Antichain(_) => false,
            Pref::Dual(p) => p.is_chain(),
            // Prop. 3h: prioritised accumulation of chains is a chain
            // (for disjoint attribute sets; overlap can break totality).
            Pref::Prior(ps) => {
                ps.iter().all(|p| p.is_chain()) && {
                    let mut seen = AttrSet::empty();
                    ps.iter().all(|p| {
                        let a = p.attributes();
                        let ok = seen.is_disjoint(&a);
                        seen = seen.union(&a);
                        ok
                    })
                }
            }
            _ => false,
        }
    }

    /// All base preferences in the term, with their attributes — the
    /// inputs to the LEVEL/DISTANCE quality functions of Preference SQL.
    pub fn bases(&self) -> Vec<&BasePref> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases<'a>(&'a self, out: &mut Vec<&'a BasePref>) {
        match self {
            Pref::Base(b) => out.push(b),
            Pref::Antichain(_) => {}
            Pref::Dual(p) => p.collect_bases(out),
            Pref::Pareto(ps) | Pref::Prior(ps) => {
                for p in ps {
                    p.collect_bases(out);
                }
            }
            Pref::Rank(_, bs) => out.extend(bs.iter()),
            Pref::Inter(l, r) | Pref::Union(l, r) => {
                l.collect_bases(out);
                r.collect_bases(out);
            }
        }
    }

    // ---- parameterized shapes ------------------------------------------

    /// Does the term contain parameterized base-preference shapes
    /// ([`crate::param::ParamBase`]) that must be bound before
    /// evaluation?
    pub fn has_params(&self) -> bool {
        self.bases().iter().any(|b| b.base.as_param().is_some())
    }

    /// The `$n` slot indices the term's shapes read (sorted,
    /// deduplicated; empty for concrete terms).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for b in self.bases() {
            if let Some(p) = b.base.as_param() {
                p.spec().collect_slots(&mut out);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Instantiate every parameterized shape with `values`
    /// (`values[0] = $1`), leaving concrete leaves untouched — the term
    /// half of prepared-statement binding. A pure tree patch: no
    /// rewriting, no schema resolution, cost O(term size).
    pub fn bind_params(&self, values: &[Value]) -> Result<Pref, CoreError> {
        Ok(match self {
            Pref::Base(b) => Pref::Base(bind_base(b, values)?),
            Pref::Antichain(a) => Pref::Antichain(a.clone()),
            Pref::Dual(p) => Pref::Dual(Arc::new(p.bind_params(values)?)),
            Pref::Pareto(ps) => Pref::Pareto(
                ps.iter()
                    .map(|p| p.bind_params(values))
                    .collect::<Result<_, _>>()?,
            ),
            Pref::Prior(ps) => Pref::Prior(
                ps.iter()
                    .map(|p| p.bind_params(values))
                    .collect::<Result<_, _>>()?,
            ),
            Pref::Rank(c, bs) => Pref::Rank(
                c.clone(),
                bs.iter()
                    .map(|b| bind_base(b, values))
                    .collect::<Result<_, _>>()?,
            ),
            Pref::Inter(l, r) => Pref::Inter(
                Arc::new(l.bind_params(values)?),
                Arc::new(r.bind_params(values)?),
            ),
            Pref::Union(l, r) => Pref::Union(
                Arc::new(l.bind_params(values)?),
                Arc::new(r.bind_params(values)?),
            ),
        })
    }
}

fn bind_base(b: &BasePref, values: &[Value]) -> Result<BasePref, CoreError> {
    Ok(match b.base.as_param() {
        Some(shape) => BasePref::from_ref(b.attr.clone(), shape.instantiate(values)?),
        None => b.clone(),
    })
}

impl fmt::Display for Pref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pref::Base(b) => write!(f, "{b}"),
            Pref::Antichain(a) => write!(f, "{a}↔"),
            Pref::Dual(p) => write!(f, "({p})∂"),
            Pref::Pareto(ps) => join(f, ps, " ⊗ "),
            Pref::Prior(ps) => join(f, ps, " & "),
            Pref::Rank(c, bs) => {
                write!(f, "rank[{}](", c.name())?;
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Pref::Inter(l, r) => write!(f, "({l} ♦ {r})"),
            Pref::Union(l, r) => write!(f, "({l} + {r})"),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, ps: &[Pref], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ")")
}

// ---- free-function builders in paper notation -------------------------

/// `POS(A, POS-set)` (Def. 6a).
pub fn pos<V: Into<Value>>(attr: impl Into<Attr>, vals: impl IntoIterator<Item = V>) -> Pref {
    Pref::base(attr, Pos::new(vals))
}

/// `NEG(A, NEG-set)` (Def. 6b).
pub fn neg<V: Into<Value>>(attr: impl Into<Attr>, vals: impl IntoIterator<Item = V>) -> Pref {
    Pref::base(attr, Neg::new(vals))
}

/// `POS/NEG(A, POS-set; NEG-set)` (Def. 6c).
pub fn pos_neg<V: Into<Value>, W: Into<Value>>(
    attr: impl Into<Attr>,
    pos: impl IntoIterator<Item = V>,
    neg: impl IntoIterator<Item = W>,
) -> Result<Pref, CoreError> {
    Ok(Pref::base(attr, PosNeg::new(pos, neg)?))
}

/// `POS/POS(A, POS1-set; POS2-set)` (Def. 6d).
pub fn pos_pos<V: Into<Value>, W: Into<Value>>(
    attr: impl Into<Attr>,
    pos1: impl IntoIterator<Item = V>,
    pos2: impl IntoIterator<Item = W>,
) -> Result<Pref, CoreError> {
    Ok(Pref::base(attr, PosPos::new(pos1, pos2)?))
}

/// `EXPLICIT(A, {(worse, better), …})` (Def. 6e).
pub fn explicit<V: Into<Value>, W: Into<Value>>(
    attr: impl Into<Attr>,
    edges: impl IntoIterator<Item = (V, W)>,
) -> Result<Pref, CoreError> {
    Ok(Pref::base(attr, Explicit::new(edges)?))
}

/// `AROUND(A, z)` (Def. 7a).
pub fn around(attr: impl Into<Attr>, z: impl Into<Value>) -> Pref {
    Pref::base(attr, Around::new(z))
}

/// `BETWEEN(A, [low, up])` (Def. 7b).
pub fn between(
    attr: impl Into<Attr>,
    low: impl Into<Value>,
    up: impl Into<Value>,
) -> Result<Pref, CoreError> {
    Ok(Pref::base(attr, Between::new(low, up)?))
}

/// `LOWEST(A)` (Def. 7c).
pub fn lowest(attr: impl Into<Attr>) -> Pref {
    Pref::base(attr, Lowest::new())
}

/// `HIGHEST(A)` (Def. 7c).
pub fn highest(attr: impl Into<Attr>) -> Pref {
    Pref::base(attr, Highest::new())
}

/// `SCORE(A, f)` (Def. 7d) with a named scoring function.
pub fn score(
    attr: impl Into<Attr>,
    fname: impl Into<String>,
    f: impl Fn(&Value) -> Option<f64> + Send + Sync + 'static,
) -> Pref {
    Pref::base(attr, Score::new(fname, f))
}

/// A layered preference (linear sum of anti-chain layers, §3.3.2).
pub fn layered(
    attr: impl Into<Attr>,
    layers: Vec<crate::base::layered::Layer>,
) -> Result<Pref, CoreError> {
    Ok(Pref::base(attr, Layered::new(layers)?))
}

/// Anti-chain `S↔` over attributes (Def. 3b).
pub fn antichain<A: Into<Attr>>(attrs: impl IntoIterator<Item = A>) -> Pref {
    Pref::Antichain(AttrSet::new(attrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_in_paper_notation() {
        let p = pos("transmission", ["automatic"]);
        assert_eq!(p.to_string(), "POS(transmission; {'automatic'})");

        let q = around("horsepower", 100).pareto(lowest("price"));
        assert_eq!(q.to_string(), "(AROUND(horsepower; 100) ⊗ LOWEST(price))");

        let r = neg("color", ["gray"]).prior(q.clone());
        assert_eq!(
            r.to_string(),
            "(NEG(color; {'gray'}) & (AROUND(horsepower; 100) ⊗ LOWEST(price)))"
        );

        let d = highest("year").dual();
        assert_eq!(d.to_string(), "(HIGHEST(year))∂");

        let a = antichain(["make"]);
        assert_eq!(a.to_string(), "{make}↔");
    }

    #[test]
    fn attributes_union() {
        let p = pos("a", ["x"]).pareto(lowest("b")).prior(highest("c"));
        assert_eq!(p.attributes(), AttrSet::new(["a", "b", "c"]));
        // shared attributes union once
        let q = pos("color", ["y"]).pareto(neg("color", ["g"]));
        assert_eq!(q.attributes(), AttrSet::new(["color"]));
    }

    #[test]
    fn pareto_flattens() {
        let p = pos("a", ["x"]).pareto(lowest("b")).pareto(highest("c"));
        match p {
            Pref::Pareto(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened Pareto, got {other}"),
        }
    }

    #[test]
    fn prior_flattens_left_and_right() {
        let p = pos("a", ["x"]).prior(lowest("b").prior(highest("c")));
        match p {
            Pref::Prior(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened Prior, got {other}"),
        }
    }

    #[test]
    fn rank_requires_score_family() {
        let ok = Pref::rank(CombineFn::sum(), vec![around("a", 0), highest("b")]);
        assert!(ok.is_ok());

        let err = Pref::rank(CombineFn::sum(), vec![pos("a", ["x"])]).unwrap_err();
        assert!(matches!(err, CoreError::NotScorable { .. }));

        let err = Pref::rank(CombineFn::sum(), vec![]).unwrap_err();
        assert!(matches!(err, CoreError::EmptyCombination { .. }));
    }

    #[test]
    fn intersect_requires_same_attrs() {
        let ok = lowest("price").intersect(highest("price"));
        assert!(ok.is_ok());
        let err = lowest("price").intersect(highest("mileage")).unwrap_err();
        assert!(matches!(err, CoreError::AttrSetMismatch { .. }));
    }

    #[test]
    fn chains_propagate_through_prior() {
        assert!(lowest("a").is_chain());
        assert!(lowest("a").prior(highest("b")).is_chain());
        assert!(!lowest("a").prior(highest("a")).is_chain()); // shared attr
        assert!(!lowest("a").pareto(highest("b")).is_chain());
        assert!(lowest("a").dual().is_chain());
        assert!(!pos("a", ["x"]).is_chain());
    }

    #[test]
    fn term_equality_is_syntactic() {
        assert_eq!(pos("a", ["x"]), pos("a", ["x"]));
        assert_ne!(pos("a", ["x"]), pos("a", ["y"]));
        assert_ne!(pos("a", ["x"]), pos("b", ["x"]));
        assert_eq!(
            lowest("p").pareto(highest("q")),
            lowest("p").pareto(highest("q"))
        );
    }

    #[test]
    fn bases_collects_leaves() {
        let p = pos("a", ["x"])
            .pareto(lowest("b"))
            .prior(Pref::rank(CombineFn::sum(), vec![around("c", 1)]).unwrap());
        let names: Vec<&str> = p.bases().iter().map(|b| b.base.name()).collect();
        assert_eq!(names, vec!["POS", "LOWEST", "AROUND"]);
    }

    #[test]
    fn combine_fns() {
        assert_eq!(CombineFn::sum().apply(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(
            CombineFn::weighted_sum(vec![1.0, 2.0]).apply(&[5.0, 3.0]),
            11.0
        );
        assert_eq!(CombineFn::min().apply(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(CombineFn::max().apply(&[3.0, 1.0, 2.0]), 3.0);
        assert_eq!(CombineFn::sum(), CombineFn::sum());
    }
}
