//! A term simplifier applying the algebra's laws as rewrite rules.
//!
//! Used by the query optimizer: by Prop. 7, rewriting a preference term
//! into an equivalent one never changes BMO query results, so the
//! optimizer may freely simplify before choosing an algorithm. Every rule
//! here is backed by a law of Propositions 2–4 (or a derived
//! generalisation proved in the comments) and the property tests check
//! `simplify(P) ≡ P` on random terms and relations.

use pref_relation::AttrSet;

use crate::term::Pref;

/// Simplify a preference term by applying the algebraic laws until a
/// fixpoint is reached.
pub fn simplify(p: &Pref) -> Pref {
    let mut current = p.clone();
    // Each pass strictly shrinks the term or leaves it unchanged, so this
    // terminates quickly; the explicit bound guards against rule bugs.
    for _ in 0..64 {
        let next = simplify_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn simplify_once(p: &Pref) -> Pref {
    match p {
        Pref::Base(_) | Pref::Antichain(_) | Pref::Rank(_, _) => p.clone(),
        Pref::Dual(inner) => {
            let inner = simplify_once(inner);
            match inner {
                // Prop. 3b: P∂∂ ≡ P.
                Pref::Dual(core) => (*core).clone(),
                // Prop. 3a: (S↔)∂ ≡ S↔.
                Pref::Antichain(a) => Pref::Antichain(a),
                other => other.dual(),
            }
        }
        Pref::Pareto(children) => simplify_pareto(children),
        Pref::Prior(children) => simplify_prior(children),
        Pref::Inter(l, r) => {
            let l = simplify_once(l);
            let r = simplify_once(r);
            // Prop. 3f: P ♦ P ≡ P.
            if l == r {
                return l;
            }
            // Prop. 3g: P ♦ P∂ ≡ A↔.
            if is_dual_pair(&l, &r) {
                return Pref::Antichain(l.attributes());
            }
            Pref::Inter(l.into(), r.into())
        }
        Pref::Union(l, r) => {
            let l = simplify_once(l);
            let r = simplify_once(r);
            Pref::Union(l.into(), r.into())
        }
    }
}

fn is_dual_pair(a: &Pref, b: &Pref) -> bool {
    matches!(b, Pref::Dual(inner) if inner.as_ref() == a)
        || matches!(a, Pref::Dual(inner) if inner.as_ref() == b)
}

fn simplify_pareto(children: &[Pref]) -> Pref {
    // Associativity (Prop. 2b) justifies flattening; commutativity makes
    // the anti-chain extraction below order-insensitive.
    let mut flat = Vec::with_capacity(children.len());
    for c in children {
        match simplify_once(c) {
            Pref::Pareto(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }

    // Prop. 3l (P ⊗ P ≡ P): drop syntactic duplicates.
    let mut uniq: Vec<Pref> = Vec::with_capacity(flat.len());
    for c in flat {
        if !uniq.contains(&c) {
            uniq.push(c);
        }
    }

    // Prop. 3n (P ⊗ P∂ ≡ A↔): a dual pair collapses those two children
    // to an anti-chain over their attributes.
    let mut collapsed: Vec<Pref> = Vec::new();
    'outer: for c in uniq {
        for existing in collapsed.iter_mut() {
            if is_dual_pair(existing, &c) {
                *existing = Pref::Antichain(existing.attributes());
                continue 'outer;
            }
        }
        collapsed.push(c);
    }

    // Prop. 3m generalised: A↔ ⊗ Q1 ⊗ … ⊗ Qn ≡ A↔ & (Q1 ⊗ … ⊗ Qn).
    // Merge all anti-chain children into one, then pull it in front as a
    // prioritised grouping head.
    let mut ac_attrs: Option<AttrSet> = None;
    let mut rest: Vec<Pref> = Vec::new();
    for c in collapsed {
        match c {
            Pref::Antichain(a) => {
                ac_attrs = Some(match ac_attrs {
                    None => a,
                    Some(prev) => prev.union(&a),
                });
            }
            other => rest.push(other),
        }
    }

    let core = match rest.len() {
        0 => None,
        1 => Some(rest.pop().expect("len checked")),
        _ => Some(Pref::Pareto(rest)),
    };

    match (ac_attrs, core) {
        (Some(a), None) => Pref::Antichain(a),
        // If the anti-chain attributes are covered by the rest, the
        // equality constraint it adds is… NOT redundant for ⊗ (it demands
        // equality where the rest may allow strict dominance), so keep the
        // prioritised form in general.
        (Some(a), Some(core)) => simplify_prior(&[Pref::Antichain(a), core]),
        (None, Some(core)) => core,
        (None, None) => unreachable!("constructors forbid empty Pareto"),
    }
}

fn simplify_prior(children: &[Pref]) -> Pref {
    // Associativity (Prop. 2c) justifies flattening.
    let mut flat = Vec::with_capacity(children.len());
    for c in children {
        match simplify_once(c) {
            Pref::Prior(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }

    // Generalised discrimination (Prop. 4a): a child whose attribute set
    // is covered by the union of all earlier children's attributes can
    // never fire — reaching it requires equality on all earlier
    // projections, which includes its own projection. Drop it.
    //
    // This subsumes P & P ≡ P (Prop. 3i) and P1 & P2 ≡ P1 on shared
    // attributes (Prop. 4a).
    let mut kept: Vec<Pref> = Vec::new();
    let mut seen = AttrSet::empty();
    for c in flat {
        let attrs = c.attributes();
        if attrs.is_subset(&seen) {
            continue;
        }
        seen = seen.union(&attrs);
        kept.push(c);
    }

    // Note on Prop. 3j (`P & A↔ ≡ P`): it only holds when the anti-chain
    // ranges over P's own attributes, and the subsumption rule above
    // already removes exactly that case. Dropping an *arbitrary* trailing
    // anti-chain would shrink the term's attribute set, which is not
    // Def. 13 equivalence and corrupts the projection-equality test of an
    // enclosing accumulation (found by the law property tests).
    match kept.len() {
        0 => unreachable!("constructors forbid empty Prior"),
        1 => kept.pop().expect("len checked"),
        _ => Pref::Prior(kept),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::equiv::equivalent_on;
    use crate::term::{antichain, around, highest, lowest, neg, pos};
    use pref_relation::{rel, Relation};

    fn sample() -> Relation {
        rel! {
            ("a": Int, "b": Int, "c": Int);
            (1, 9, 0), (1, 2, 4), (5, 0, 2), (5, 9, 2), (3, 3, 3), (2, 2, 1),
        }
    }

    #[test]
    fn double_dual_vanishes() {
        let p = lowest("a");
        assert_eq!(simplify(&p.clone().dual().dual()), p);
    }

    #[test]
    fn pareto_duplicates_drop() {
        let p = Pref::Pareto(vec![lowest("a"), lowest("a")]);
        assert_eq!(simplify(&p), lowest("a"));
    }

    #[test]
    fn pareto_dual_pair_collapses_to_antichain() {
        let p = Pref::Pareto(vec![lowest("a"), lowest("a").dual()]);
        assert_eq!(simplify(&p), antichain(["a"]));
    }

    #[test]
    fn prior_shared_attrs_discriminates() {
        // Prop. 4a.
        let p = Pref::Prior(vec![pos("a", [1i64]), neg("a", [2i64])]);
        assert_eq!(simplify(&p), pos("a", [1i64]));
    }

    #[test]
    fn prior_covered_later_child_drops() {
        // attrs(c3) = {a} ⊆ {a} ∪ {b}.
        let p = Pref::Prior(vec![lowest("a"), highest("b"), around("a", 0)]);
        assert_eq!(simplify(&p), Pref::Prior(vec![lowest("a"), highest("b")]));
    }

    #[test]
    fn covered_trailing_antichain_drops() {
        // Prop. 3j: the anti-chain over P's own attributes disappears…
        let p = Pref::Prior(vec![lowest("a"), antichain(["a"])]);
        assert_eq!(simplify(&p), lowest("a"));
    }

    #[test]
    fn foreign_trailing_antichain_is_kept() {
        // …but an anti-chain over *other* attributes must stay: dropping
        // it would change the term's attribute set (Def. 13) and the
        // projection equality an enclosing accumulation relies on.
        let p = Pref::Prior(vec![lowest("a"), antichain(["b"])]);
        assert_eq!(simplify(&p), p);
        // Witness for the enclosing-context hazard: with Y on `b`,
        //   (X_a & {b}↔) & Y_b  ≢  X_a & Y_b.
        let nested = Pref::Prior(vec![p, highest("b")]);
        let wrong = Pref::Prior(vec![lowest("a"), highest("b")]);
        let r = sample();
        assert!(!crate::algebra::equiv::equivalent_on(&nested, &wrong, &r).unwrap());
        // And simplify keeps the nested form's semantics.
        assert!(crate::algebra::equiv::equivalent_on(&nested, &simplify(&nested), &r).unwrap());
    }

    #[test]
    fn grouping_antichain_head_is_kept() {
        // A↔ & P is Def. 16 grouping — must NOT be simplified away.
        let p = Pref::Prior(vec![antichain(["a"]), lowest("b")]);
        assert_eq!(simplify(&p), p);
    }

    #[test]
    fn pareto_with_antichain_becomes_grouped_prior() {
        // Prop. 3m generalised.
        let p = Pref::Pareto(vec![antichain(["c"]), lowest("a"), highest("b")]);
        let s = simplify(&p);
        assert_eq!(
            s,
            Pref::Prior(vec![
                antichain(["c"]),
                Pref::Pareto(vec![lowest("a"), highest("b")])
            ])
        );
    }

    #[test]
    fn intersection_idempotence_and_dual() {
        let p = lowest("a").intersect(lowest("a")).unwrap();
        assert_eq!(simplify(&p), lowest("a"));
        let q = lowest("a").intersect(lowest("a").dual()).unwrap();
        assert_eq!(simplify(&q), antichain(["a"]));
    }

    #[test]
    fn nested_flattening() {
        let p = Pref::Prior(vec![
            Pref::Prior(vec![lowest("a"), highest("b")]),
            lowest("c"),
        ]);
        match simplify(&p) {
            Pref::Prior(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat Prior, got {other}"),
        }
    }

    #[test]
    fn simplification_preserves_equivalence() {
        let r = sample();
        let terms = vec![
            Pref::Pareto(vec![lowest("a"), lowest("a"), highest("b")]),
            Pref::Prior(vec![pos("a", [1i64]), neg("a", [5i64]), lowest("b")]),
            Pref::Pareto(vec![antichain(["c"]), lowest("a")]),
            Pref::Prior(vec![lowest("a"), antichain(["a", "b"]), highest("c")]),
            lowest("a").dual().dual().pareto(highest("b").dual()),
            Pref::Pareto(vec![around("a", 2), around("a", 2).dual(), lowest("b")]),
        ];
        for t in terms {
            let s = simplify(&t);
            assert!(
                equivalent_on(&t, &s, &r).unwrap(),
                "simplify changed semantics of {t} → {s}"
            );
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let t = Pref::Pareto(vec![antichain(["c"]), lowest("a"), lowest("a")]);
        let once = simplify(&t);
        assert_eq!(simplify(&once), once);
    }
}
