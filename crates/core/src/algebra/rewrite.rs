//! A term simplifier applying the algebra's laws as rewrite rules.
//!
//! Used by the query optimizer: by Prop. 7, rewriting a preference term
//! into an equivalent one never changes BMO query results, so the
//! optimizer may freely simplify before choosing an algorithm. Every rule
//! here is backed by a law of Propositions 2–4 (or a derived
//! generalisation proved in the comments) and the property tests check
//! `simplify(P) ≡ P` on random terms and relations.
//!
//! The rewriter is a **step-at-a-time** engine: [`simplify_traced`]
//! applies exactly one law per step (innermost-leftmost applicable rule
//! first) and records each step as a [`RewriteStep`] naming the law and
//! the whole term before/after — the derivation trace the query planner
//! prints through `EXPLAIN` and that property tests replay term-by-term
//! (each recorded pair must satisfy `σ[before](R) = σ[after](R)`).
//! [`simplify`] is the trace-free spelling of the same fixpoint.

use pref_relation::AttrSet;

use crate::term::Pref;

/// One recorded application of an algebra law: the law's name and the
/// **whole** term before and after the step. Consecutive steps chain
/// (`steps[k].after == steps[k + 1].before`), so a derivation replays as
/// a sequence of Prop. 7-preserving equivalences.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteStep {
    /// The law that fired, e.g. `"Prop. 3b (P∂∂ ≡ P)"`.
    pub law: &'static str,
    /// The full term before this step.
    pub before: Pref,
    /// The full term after this step.
    pub after: Pref,
}

/// Simplify a preference term by applying the algebraic laws until a
/// fixpoint is reached.
pub fn simplify(p: &Pref) -> Pref {
    let mut current = p.clone();
    // One law fires per step and the rule set strictly decreases the
    // (antichain-under-Pareto, node count) measure, so this terminates
    // quickly; the explicit bound guards against rule bugs.
    for _ in 0..256 {
        match step(&current) {
            Some((next, _law)) => current = next,
            None => return current,
        }
    }
    current
}

/// [`simplify`] with the derivation recorded: returns the fixpoint plus
/// one [`RewriteStep`] per law application, in the order they fired.
pub fn simplify_traced(p: &Pref) -> (Pref, Vec<RewriteStep>) {
    let mut current = p.clone();
    let mut steps = Vec::new();
    for _ in 0..256 {
        match step(&current) {
            Some((next, law)) => {
                steps.push(RewriteStep {
                    law,
                    before: current.clone(),
                    after: next.clone(),
                });
                current = next;
            }
            None => break,
        }
    }
    (current, steps)
}

/// Apply the first applicable law, innermost-leftmost, returning the
/// rewritten whole term and the law's name. `None` = fixpoint reached.
fn step(p: &Pref) -> Option<(Pref, &'static str)> {
    match p {
        Pref::Base(_) | Pref::Antichain(_) | Pref::Rank(_, _) => None,
        Pref::Dual(inner) => {
            if let Some((next, law)) = step(inner) {
                return Some((next.dual(), law));
            }
            match inner.as_ref() {
                // Prop. 3b: P∂∂ ≡ P.
                Pref::Dual(core) => Some(((**core).clone(), "Prop. 3b (P∂∂ ≡ P)")),
                // Prop. 3a: (S↔)∂ ≡ S↔.
                Pref::Antichain(a) => Some((Pref::Antichain(a.clone()), "Prop. 3a ((S↔)∂ ≡ S↔)")),
                _ => None,
            }
        }
        Pref::Pareto(children) => {
            for (i, c) in children.iter().enumerate() {
                if let Some((nc, law)) = step(c) {
                    let mut v = children.clone();
                    v[i] = nc;
                    return Some((Pref::Pareto(v), law));
                }
            }
            step_pareto(children)
        }
        Pref::Prior(children) => {
            for (i, c) in children.iter().enumerate() {
                if let Some((nc, law)) = step(c) {
                    let mut v = children.clone();
                    v[i] = nc;
                    return Some((Pref::Prior(v), law));
                }
            }
            step_prior(children)
        }
        Pref::Inter(l, r) => {
            if let Some((nl, law)) = step(l) {
                return Some((Pref::Inter(nl.into(), (**r).clone().into()), law));
            }
            if let Some((nr, law)) = step(r) {
                return Some((Pref::Inter((**l).clone().into(), nr.into()), law));
            }
            // Prop. 3f: P ♦ P ≡ P.
            if l == r {
                return Some(((**l).clone(), "Prop. 3f (P ♦ P ≡ P)"));
            }
            // Prop. 3g: P ♦ P∂ ≡ A↔.
            if is_dual_pair(l, r) {
                return Some((Pref::Antichain(l.attributes()), "Prop. 3g (P ♦ P∂ ≡ A↔)"));
            }
            None
        }
        Pref::Union(l, r) => {
            if let Some((nl, law)) = step(l) {
                return Some((Pref::Union(nl.into(), (**r).clone().into()), law));
            }
            if let Some((nr, law)) = step(r) {
                return Some((Pref::Union((**l).clone().into(), nr.into()), law));
            }
            None
        }
    }
}

fn is_dual_pair(a: &Pref, b: &Pref) -> bool {
    matches!(b, Pref::Dual(inner) if inner.as_ref() == a)
        || matches!(a, Pref::Dual(inner) if inner.as_ref() == b)
}

/// One Pareto-level law application (children are already at fixpoint).
fn step_pareto(children: &[Pref]) -> Option<(Pref, &'static str)> {
    // Associativity (Prop. 2b): splice one nested Pareto child.
    if let Some(i) = children.iter().position(|c| matches!(c, Pref::Pareto(_))) {
        let mut v: Vec<Pref> = children[..i].to_vec();
        match &children[i] {
            Pref::Pareto(inner) => v.extend(inner.iter().cloned()),
            _ => unreachable!("position matched a Pareto child"),
        }
        v.extend(children[i + 1..].iter().cloned());
        return Some((
            Pref::Pareto(v),
            "Prop. 2b (⊗ associativity: flatten nesting)",
        ));
    }

    // Prop. 3l (P ⊗ P ≡ P): drop one later syntactic duplicate.
    for i in 0..children.len() {
        for j in (i + 1)..children.len() {
            if children[i] == children[j] {
                let mut v = children.to_vec();
                v.remove(j);
                return Some((unwrap_pareto(v), "Prop. 3l (P ⊗ P ≡ P)"));
            }
        }
    }

    // Prop. 3n (P ⊗ P∂ ≡ A↔): collapse one dual pair to an anti-chain.
    for i in 0..children.len() {
        for j in (i + 1)..children.len() {
            if is_dual_pair(&children[i], &children[j]) {
                let mut v = children.to_vec();
                v[i] = Pref::Antichain(children[i].attributes());
                v.remove(j);
                return Some((unwrap_pareto(v), "Prop. 3n (P ⊗ P∂ ≡ A↔)"));
            }
        }
    }

    // Merge two anti-chain children: A↔ ⊗ B↔ ≡ (A∪B)↔ (both demand
    // projection equality, jointly over A∪B — the n = 0 case of the
    // Prop. 3m generalisation below).
    let acs: Vec<usize> = children
        .iter()
        .enumerate()
        .filter_map(|(i, c)| matches!(c, Pref::Antichain(_)).then_some(i))
        .collect();
    if acs.len() >= 2 {
        let (i, j) = (acs[0], acs[1]);
        let (Pref::Antichain(a), Pref::Antichain(b)) = (&children[i], &children[j]) else {
            unreachable!("indices filtered to Antichain children");
        };
        let mut v = children.to_vec();
        v[i] = Pref::Antichain(a.union(b));
        v.remove(j);
        return Some((unwrap_pareto(v), "A↔ ⊗ B↔ ≡ (A∪B)↔ (anti-chain merge)"));
    }

    // Prop. 3m generalised: A↔ ⊗ Q1 ⊗ … ⊗ Qn ≡ A↔ & (Q1 ⊗ … ⊗ Qn) —
    // pull the (single, after merging) anti-chain out front as a
    // prioritised grouping head.
    if let Some(i) = acs.first().copied() {
        if children.len() >= 2 {
            let ac = children[i].clone();
            let mut rest: Vec<Pref> = children.to_vec();
            rest.remove(i);
            let core = unwrap_pareto(rest);
            return Some((
                Pref::Prior(vec![ac, core]),
                "Prop. 3m generalised (A↔ ⊗ Q ≡ A↔ & Q)",
            ));
        }
    }

    // Singleton accumulation: ⊗ over one operand is that operand.
    if children.len() == 1 {
        return Some((
            children[0].clone(),
            "singleton accumulation unwraps (definitional)",
        ));
    }
    None
}

/// One Prior-level law application (children are already at fixpoint).
fn step_prior(children: &[Pref]) -> Option<(Pref, &'static str)> {
    // Associativity (Prop. 2c): splice one nested Prior child.
    if let Some(i) = children.iter().position(|c| matches!(c, Pref::Prior(_))) {
        let mut v: Vec<Pref> = children[..i].to_vec();
        match &children[i] {
            Pref::Prior(inner) => v.extend(inner.iter().cloned()),
            _ => unreachable!("position matched a Prior child"),
        }
        v.extend(children[i + 1..].iter().cloned());
        return Some((
            Pref::Prior(v),
            "Prop. 2c (& associativity: flatten nesting)",
        ));
    }

    // Generalised discrimination (Prop. 4a): a child whose attribute set
    // is covered by the union of all earlier children's attributes can
    // never fire — reaching it requires equality on all earlier
    // projections, which includes its own projection. Drop it.
    //
    // This subsumes P & P ≡ P (Prop. 3i) and P1 & P2 ≡ P1 on shared
    // attributes (Prop. 4a).
    //
    // Note on Prop. 3j (`P & A↔ ≡ P`): it only holds when the anti-chain
    // ranges over P's own attributes, and this subsumption rule removes
    // exactly that case. Dropping an *arbitrary* trailing anti-chain
    // would shrink the term's attribute set, which is not Def. 13
    // equivalence and corrupts the projection-equality test of an
    // enclosing accumulation (found by the law property tests).
    let mut seen = AttrSet::empty();
    for (i, c) in children.iter().enumerate() {
        let attrs = c.attributes();
        if i > 0 && attrs.is_subset(&seen) {
            let mut v = children.to_vec();
            v.remove(i);
            return Some((
                unwrap_prior(v),
                "Prop. 4a generalised (covered prioritised child never fires)",
            ));
        }
        seen = seen.union(&attrs);
    }

    // Singleton accumulation: & over one operand is that operand.
    if children.len() == 1 {
        return Some((
            children[0].clone(),
            "singleton accumulation unwraps (definitional)",
        ));
    }
    None
}

fn unwrap_pareto(mut v: Vec<Pref>) -> Pref {
    if v.len() == 1 {
        v.pop().expect("len checked")
    } else {
        Pref::Pareto(v)
    }
}

fn unwrap_prior(mut v: Vec<Pref>) -> Pref {
    if v.len() == 1 {
        v.pop().expect("len checked")
    } else {
        Pref::Prior(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::equiv::equivalent_on;
    use crate::term::{antichain, around, highest, lowest, neg, pos};
    use pref_relation::{rel, Relation};

    fn sample() -> Relation {
        rel! {
            ("a": Int, "b": Int, "c": Int);
            (1, 9, 0), (1, 2, 4), (5, 0, 2), (5, 9, 2), (3, 3, 3), (2, 2, 1),
        }
    }

    #[test]
    fn double_dual_vanishes() {
        let p = lowest("a");
        assert_eq!(simplify(&p.clone().dual().dual()), p);
    }

    #[test]
    fn pareto_duplicates_drop() {
        let p = Pref::Pareto(vec![lowest("a"), lowest("a")]);
        assert_eq!(simplify(&p), lowest("a"));
    }

    #[test]
    fn pareto_dual_pair_collapses_to_antichain() {
        let p = Pref::Pareto(vec![lowest("a"), lowest("a").dual()]);
        assert_eq!(simplify(&p), antichain(["a"]));
    }

    #[test]
    fn prior_shared_attrs_discriminates() {
        // Prop. 4a.
        let p = Pref::Prior(vec![pos("a", [1i64]), neg("a", [2i64])]);
        assert_eq!(simplify(&p), pos("a", [1i64]));
    }

    #[test]
    fn prior_covered_later_child_drops() {
        // attrs(c3) = {a} ⊆ {a} ∪ {b}.
        let p = Pref::Prior(vec![lowest("a"), highest("b"), around("a", 0)]);
        assert_eq!(simplify(&p), Pref::Prior(vec![lowest("a"), highest("b")]));
    }

    #[test]
    fn covered_trailing_antichain_drops() {
        // Prop. 3j: the anti-chain over P's own attributes disappears…
        let p = Pref::Prior(vec![lowest("a"), antichain(["a"])]);
        assert_eq!(simplify(&p), lowest("a"));
    }

    #[test]
    fn foreign_trailing_antichain_is_kept() {
        // …but an anti-chain over *other* attributes must stay: dropping
        // it would change the term's attribute set (Def. 13) and the
        // projection equality an enclosing accumulation relies on.
        let p = Pref::Prior(vec![lowest("a"), antichain(["b"])]);
        assert_eq!(simplify(&p), p);
        // Witness for the enclosing-context hazard: with Y on `b`,
        //   (X_a & {b}↔) & Y_b  ≢  X_a & Y_b.
        let nested = Pref::Prior(vec![p, highest("b")]);
        let wrong = Pref::Prior(vec![lowest("a"), highest("b")]);
        let r = sample();
        assert!(!crate::algebra::equiv::equivalent_on(&nested, &wrong, &r).unwrap());
        // And simplify keeps the nested form's semantics.
        assert!(crate::algebra::equiv::equivalent_on(&nested, &simplify(&nested), &r).unwrap());
    }

    #[test]
    fn grouping_antichain_head_is_kept() {
        // A↔ & P is Def. 16 grouping — must NOT be simplified away.
        let p = Pref::Prior(vec![antichain(["a"]), lowest("b")]);
        assert_eq!(simplify(&p), p);
    }

    #[test]
    fn pareto_with_antichain_becomes_grouped_prior() {
        // Prop. 3m generalised.
        let p = Pref::Pareto(vec![antichain(["c"]), lowest("a"), highest("b")]);
        let s = simplify(&p);
        assert_eq!(
            s,
            Pref::Prior(vec![
                antichain(["c"]),
                Pref::Pareto(vec![lowest("a"), highest("b")])
            ])
        );
    }

    #[test]
    fn intersection_idempotence_and_dual() {
        let p = lowest("a").intersect(lowest("a")).unwrap();
        assert_eq!(simplify(&p), lowest("a"));
        let q = lowest("a").intersect(lowest("a").dual()).unwrap();
        assert_eq!(simplify(&q), antichain(["a"]));
    }

    #[test]
    fn nested_flattening() {
        let p = Pref::Prior(vec![
            Pref::Prior(vec![lowest("a"), highest("b")]),
            lowest("c"),
        ]);
        match simplify(&p) {
            Pref::Prior(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flat Prior, got {other}"),
        }
    }

    #[test]
    fn simplification_preserves_equivalence() {
        let r = sample();
        let terms = vec![
            Pref::Pareto(vec![lowest("a"), lowest("a"), highest("b")]),
            Pref::Prior(vec![pos("a", [1i64]), neg("a", [5i64]), lowest("b")]),
            Pref::Pareto(vec![antichain(["c"]), lowest("a")]),
            Pref::Prior(vec![lowest("a"), antichain(["a", "b"]), highest("c")]),
            lowest("a").dual().dual().pareto(highest("b").dual()),
            Pref::Pareto(vec![around("a", 2), around("a", 2).dual(), lowest("b")]),
        ];
        for t in terms {
            let s = simplify(&t);
            assert!(
                equivalent_on(&t, &s, &r).unwrap(),
                "simplify changed semantics of {t} → {s}"
            );
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let t = Pref::Pareto(vec![antichain(["c"]), lowest("a"), lowest("a")]);
        let once = simplify(&t);
        assert_eq!(simplify(&once), once);
    }

    #[test]
    fn trace_chains_and_matches_simplify() {
        let t = Pref::Pareto(vec![
            antichain(["c"]),
            lowest("a"),
            lowest("a"),
            highest("b").dual().dual(),
        ]);
        let (fixpoint, steps) = simplify_traced(&t);
        assert_eq!(fixpoint, simplify(&t));
        assert!(!steps.is_empty(), "this term must rewrite");
        // The steps chain: each after is the next before, the first
        // before is the input, the last after is the fixpoint.
        assert_eq!(steps.first().unwrap().before, t);
        assert_eq!(steps.last().unwrap().after, fixpoint);
        for w in steps.windows(2) {
            assert_eq!(w[0].after, w[1].before, "derivation must chain");
        }
        // Every step preserves σ[P](R) (Prop. 7 on each recorded law).
        let r = sample();
        for s in &steps {
            assert!(
                equivalent_on(&s.before, &s.after, &r).unwrap(),
                "{} broke equivalence: {} → {}",
                s.law,
                s.before,
                s.after
            );
        }
    }

    #[test]
    fn trace_is_empty_at_fixpoint() {
        let t = Pref::Prior(vec![antichain(["a"]), lowest("b")]);
        let (fixpoint, steps) = simplify_traced(&t);
        assert_eq!(fixpoint, t);
        assert!(steps.is_empty());
    }

    #[test]
    fn trace_names_the_laws() {
        let (_, steps) = simplify_traced(&lowest("a").dual().dual());
        assert_eq!(steps.len(), 1);
        assert!(steps[0].law.contains("Prop. 3b"));
        let (_, steps) = simplify_traced(&Pref::Pareto(vec![lowest("a"), lowest("a")]));
        assert!(steps.iter().any(|s| s.law.contains("Prop. 3l")));
    }
}
