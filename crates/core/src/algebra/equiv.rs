//! Equivalence of preference terms (Def. 13).
//!
//! `P1 ≡ P2` iff `A1 = A2` and the two strict partial orders agree on all
//! of `dom(A1)`. Domains are infinite in general, so the checkers here are
//! *extensional over a finite sample*: they decide equivalence restricted
//! to the given tuples/values. The law tests combine them with exhaustive
//! small domains and property-based sampling.

use pref_relation::{Relation, Value};

use crate::base::BasePreference;
use crate::error::CoreError;
use crate::eval::CompiledPref;
use crate::term::Pref;

/// A witnessed difference between two preference orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inequivalence {
    /// Index of the first tuple/value.
    pub x: usize,
    /// Index of the second.
    pub y: usize,
    /// `x <P1 y` result.
    pub left: bool,
    /// `x <P2 y` result.
    pub right: bool,
}

/// Check `P1 ≡ P2` restricted to the tuples of `r`. Returns the first
/// witness of inequivalence, or `None` when the orders agree (and the
/// attribute sets match).
pub fn inequivalence_witness(
    p1: &Pref,
    p2: &Pref,
    r: &Relation,
) -> Result<Option<Inequivalence>, CoreError> {
    if p1.attributes() != p2.attributes() {
        // Distinct attribute sets: inequivalent by definition. Use a
        // degenerate witness.
        return Ok(Some(Inequivalence {
            x: 0,
            y: 0,
            left: false,
            right: false,
        }));
    }
    let c1 = CompiledPref::compile(p1, r.schema())?;
    let c2 = CompiledPref::compile(p2, r.schema())?;
    for (i, x) in r.iter().enumerate() {
        for (j, y) in r.iter().enumerate() {
            let left = c1.better(x, y);
            let right = c2.better(x, y);
            if left != right {
                return Ok(Some(Inequivalence {
                    x: i,
                    y: j,
                    left,
                    right,
                }));
            }
        }
    }
    Ok(None)
}

/// `P1 ≡ P2` restricted to the tuples of `r`.
pub fn equivalent_on(p1: &Pref, p2: &Pref, r: &Relation) -> Result<bool, CoreError> {
    Ok(inequivalence_witness(p1, p2, r)?.is_none())
}

/// Value-level equivalence of two base preferences over a domain sample.
pub fn equivalent_values(b1: &dyn BasePreference, b2: &dyn BasePreference, dom: &[Value]) -> bool {
    dom.iter()
        .all(|x| dom.iter().all(|y| b1.better(x, y) == b2.better(x, y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{Highest, Lowest};
    use crate::term::{highest, lowest, pos};
    use pref_relation::rel;

    #[test]
    fn syntactically_different_but_equivalent() {
        // HIGHEST ≡ LOWEST∂ (Prop. 3d), at term level.
        let r = rel! { ("a": Int); (1,), (2,), (3,) };
        assert!(equivalent_on(&highest("a"), &lowest("a").dual(), &r).unwrap());
    }

    #[test]
    fn different_attr_sets_are_inequivalent() {
        let r = rel! { ("a": Int, "b": Int); (1, 2) };
        assert!(!equivalent_on(&highest("a"), &highest("b"), &r).unwrap());
    }

    #[test]
    fn witness_reports_direction() {
        let r = rel! { ("a": Int); (1,), (2,) };
        let w = inequivalence_witness(&highest("a"), &lowest("a"), &r)
            .unwrap()
            .unwrap();
        // 1 <HIGHEST 2 but not 1 <LOWEST 2.
        assert!(w.left != w.right);
    }

    #[test]
    fn value_level_equivalence() {
        let dom: Vec<Value> = (0..5).map(Value::from).collect();
        let h = Highest::new();
        let l = Lowest::new();
        assert!(!equivalent_values(&h, &l, &dom));
        assert!(equivalent_values(&h, &h, &dom));
    }

    #[test]
    fn equivalence_is_sample_relative() {
        // POS{5} and POS{5,99} agree on a sample without 99…
        let r = rel! { ("a": Int); (1,), (5,) };
        assert!(equivalent_on(&pos("a", [5]), &pos("a", [5i64, 99]), &r).unwrap());
        // …but disagree once 99 is observable.
        let r2 = rel! { ("a": Int); (1,), (5,), (99,) };
        assert!(!equivalent_on(&pos("a", [5]), &pos("a", [5i64, 99]), &r2).unwrap());
    }
}
