//! The law collection of the preference algebra (Propositions 2–6),
//! packaged as executable equation schemas.
//!
//! Every law is a function from operand terms to an `(lhs, rhs)` pair of
//! terms claimed equivalent (Def. 13). The test suites and the `repro`
//! harness instantiate the schemas with paper examples, hand-picked edge
//! cases and property-based random operands, then check extensional
//! equivalence with [`crate::algebra::equiv`].

use std::collections::HashSet;
use std::sync::Arc;

use pref_relation::Value;

use crate::base::{
    AntichainBase, BaseRef, DualBase, Highest, LinearSum, Lowest, Neg, Pos, UnionBase,
};
use crate::term::Pref;

/// Side conditions a law schema places on its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requires {
    /// Any preferences.
    Nothing,
    /// All operands on the same attribute set (Def. 11 context).
    SameAttrs,
    /// Pairwise disjoint attribute sets (Prop. 4b context).
    DisjointAttrs,
    /// Same attribute set and pairwise disjoint ranges (Def. 11b); random
    /// instantiation must construct operands disjoint by design.
    DisjointRanges,
}

/// A one-operand law schema.
pub struct UnaryLaw {
    pub name: &'static str,
    pub build: fn(Pref) -> (Pref, Pref),
}

/// A two-operand law schema.
pub struct BinaryLaw {
    pub name: &'static str,
    pub requires: Requires,
    pub build: fn(Pref, Pref) -> (Pref, Pref),
}

/// A three-operand law schema.
pub struct TernaryLaw {
    pub name: &'static str,
    pub requires: Requires,
    pub build: fn(Pref, Pref, Pref) -> (Pref, Pref),
}

fn ac_of(p: &Pref) -> Pref {
    Pref::Antichain(p.attributes())
}

/// The unary laws of Proposition 3.
pub fn unary_laws() -> Vec<UnaryLaw> {
    vec![
        UnaryLaw {
            name: "P∂∂ ≡ P (Prop 3b)",
            build: |p| (p.clone().dual().dual(), p),
        },
        UnaryLaw {
            name: "P ♦ P ≡ P (Prop 3f)",
            build: |p| (Pref::Inter(Arc::new(p.clone()), Arc::new(p.clone())), p),
        },
        UnaryLaw {
            name: "P ♦ P∂ ≡ A↔ (Prop 3g)",
            build: |p| {
                let ac = ac_of(&p);
                (Pref::Inter(Arc::new(p.clone()), Arc::new(p.dual())), ac)
            },
        },
        UnaryLaw {
            name: "P & P ≡ P (Prop 3i)",
            build: |p| (Pref::Prior(vec![p.clone(), p.clone()]), p),
        },
        UnaryLaw {
            name: "P & P∂ ≡ P (Prop 3i)",
            build: |p| (Pref::Prior(vec![p.clone(), p.clone().dual()]), p),
        },
        UnaryLaw {
            name: "P & A↔ ≡ P (Prop 3j)",
            build: |p| {
                let ac = ac_of(&p);
                (Pref::Prior(vec![p.clone(), ac]), p)
            },
        },
        UnaryLaw {
            name: "A↔ & P ≡ A↔ (Prop 3k)",
            build: |p| {
                let ac = ac_of(&p);
                (Pref::Prior(vec![ac.clone(), p]), ac)
            },
        },
        UnaryLaw {
            name: "P ⊗ P ≡ P (Prop 3l)",
            build: |p| (Pref::Pareto(vec![p.clone(), p.clone()]), p),
        },
        UnaryLaw {
            name: "A↔ ⊗ P ≡ A↔ & P (Prop 3m)",
            build: |p| {
                let ac = ac_of(&p);
                (
                    Pref::Pareto(vec![ac.clone(), p.clone()]),
                    Pref::Prior(vec![ac, p]),
                )
            },
        },
        UnaryLaw {
            name: "P ⊗ A↔ ≡ A↔ (Prop 3n)",
            build: |p| {
                let ac = ac_of(&p);
                (Pref::Pareto(vec![p, ac.clone()]), ac)
            },
        },
        UnaryLaw {
            name: "P ⊗ P∂ ≡ A↔ (Prop 3n)",
            build: |p| {
                let ac = ac_of(&p);
                (Pref::Pareto(vec![p.clone(), p.dual()]), ac)
            },
        },
    ]
}

/// The binary laws: commutativity (Prop. 2), the discrimination theorem
/// (Prop. 4), the non-discrimination theorem (Prop. 5) and Prop. 6.
pub fn binary_laws() -> Vec<BinaryLaw> {
    vec![
        BinaryLaw {
            name: "P1 ⊗ P2 ≡ P2 ⊗ P1 (Prop 2b)",
            requires: Requires::Nothing,
            build: |p1, p2| {
                (
                    Pref::Pareto(vec![p1.clone(), p2.clone()]),
                    Pref::Pareto(vec![p2, p1]),
                )
            },
        },
        BinaryLaw {
            name: "P1 ♦ P2 ≡ P2 ♦ P1 (Prop 2d)",
            requires: Requires::SameAttrs,
            build: |p1, p2| {
                (
                    Pref::Inter(Arc::new(p1.clone()), Arc::new(p2.clone())),
                    Pref::Inter(Arc::new(p2), Arc::new(p1)),
                )
            },
        },
        BinaryLaw {
            name: "P1 + P2 ≡ P2 + P1 (Prop 2e)",
            requires: Requires::DisjointRanges,
            build: |p1, p2| {
                (
                    Pref::Union(Arc::new(p1.clone()), Arc::new(p2.clone())),
                    Pref::Union(Arc::new(p2), Arc::new(p1)),
                )
            },
        },
        BinaryLaw {
            name: "P1 & P2 ≡ P1 on shared attributes (Prop 4a)",
            requires: Requires::SameAttrs,
            build: |p1, p2| (Pref::Prior(vec![p1.clone(), p2]), p1),
        },
        BinaryLaw {
            name: "P1 & P2 ≡ P1 + (A1↔ & P2) (Prop 4b)",
            requires: Requires::DisjointAttrs,
            build: |p1, p2| {
                let a1 = Pref::Antichain(p1.attributes());
                (
                    Pref::Prior(vec![p1.clone(), p2.clone()]),
                    Pref::Union(Arc::new(p1), Arc::new(Pref::Prior(vec![a1, p2]))),
                )
            },
        },
        BinaryLaw {
            name: "P1 ⊗ P2 ≡ (P1 & P2) ♦ (P2 & P1) (Prop 5, non-discrimination)",
            requires: Requires::Nothing,
            build: |p1, p2| {
                (
                    Pref::Pareto(vec![p1.clone(), p2.clone()]),
                    Pref::Inter(
                        Arc::new(Pref::Prior(vec![p1.clone(), p2.clone()])),
                        Arc::new(Pref::Prior(vec![p2, p1])),
                    ),
                )
            },
        },
        BinaryLaw {
            name: "P1 ⊗ P2 ≡ P1 ♦ P2 on shared attributes (Prop 6)",
            requires: Requires::SameAttrs,
            build: |p1, p2| {
                (
                    Pref::Pareto(vec![p1.clone(), p2.clone()]),
                    Pref::Inter(Arc::new(p1), Arc::new(p2)),
                )
            },
        },
    ]
}

/// The ternary associativity laws of Proposition 2.
pub fn ternary_laws() -> Vec<TernaryLaw> {
    vec![
        TernaryLaw {
            name: "(P1 ⊗ P2) ⊗ P3 ≡ P1 ⊗ (P2 ⊗ P3) (Prop 2b)",
            requires: Requires::Nothing,
            build: |p1, p2, p3| {
                (
                    Pref::Pareto(vec![Pref::Pareto(vec![p1.clone(), p2.clone()]), p3.clone()]),
                    Pref::Pareto(vec![p1, Pref::Pareto(vec![p2, p3])]),
                )
            },
        },
        TernaryLaw {
            name: "(P1 & P2) & P3 ≡ P1 & (P2 & P3) (Prop 2c)",
            requires: Requires::Nothing,
            build: |p1, p2, p3| {
                (
                    Pref::Prior(vec![Pref::Prior(vec![p1.clone(), p2.clone()]), p3.clone()]),
                    Pref::Prior(vec![p1, Pref::Prior(vec![p2, p3])]),
                )
            },
        },
        TernaryLaw {
            name: "(P1 ♦ P2) ♦ P3 ≡ P1 ♦ (P2 ♦ P3) (Prop 2d)",
            requires: Requires::SameAttrs,
            build: |p1, p2, p3| {
                (
                    Pref::Inter(
                        Arc::new(Pref::Inter(Arc::new(p1.clone()), Arc::new(p2.clone()))),
                        Arc::new(p3.clone()),
                    ),
                    Pref::Inter(
                        Arc::new(p1),
                        Arc::new(Pref::Inter(Arc::new(p2), Arc::new(p3))),
                    ),
                )
            },
        },
        TernaryLaw {
            name: "(P1 + P2) + P3 ≡ P1 + (P2 + P3) (Prop 2e)",
            requires: Requires::DisjointRanges,
            build: |p1, p2, p3| {
                (
                    Pref::Union(
                        Arc::new(Pref::Union(Arc::new(p1.clone()), Arc::new(p2.clone()))),
                        Arc::new(p3.clone()),
                    ),
                    Pref::Union(
                        Arc::new(p1),
                        Arc::new(Pref::Union(Arc::new(p2), Arc::new(p3))),
                    ),
                )
            },
        },
    ]
}

// ---- value-level laws of Proposition 3 --------------------------------

/// A value-level law: a pair of base preferences claimed equivalent on
/// every domain.
pub struct ValueLaw {
    pub name: &'static str,
    pub lhs: BaseRef,
    pub rhs: BaseRef,
}

/// Prop. 3a: `(S↔)∂ ≡ S↔`.
pub fn antichain_dual_law() -> ValueLaw {
    ValueLaw {
        name: "(S↔)∂ ≡ S↔ (Prop 3a)",
        lhs: Arc::new(DualBase::new(Arc::new(AntichainBase::new()))),
        rhs: Arc::new(AntichainBase::new()),
    }
}

/// Prop. 3d: `HIGHEST ≡ LOWEST∂`.
pub fn highest_dual_law() -> ValueLaw {
    ValueLaw {
        name: "HIGHEST ≡ LOWEST∂ (Prop 3d)",
        lhs: Arc::new(Highest::new()),
        rhs: Arc::new(DualBase::new(Arc::new(Lowest::new()))),
    }
}

/// Prop. 3e: `POS∂ ≡ NEG` when POS-set = NEG-set.
pub fn pos_dual_law(set: Vec<Value>) -> ValueLaw {
    ValueLaw {
        name: "POS∂ ≡ NEG (Prop 3e)",
        lhs: Arc::new(DualBase::new(Arc::new(Pos::new(set.clone())))),
        rhs: Arc::new(Neg::new(set)),
    }
}

/// Prop. 3e: `NEG∂ ≡ POS` when the sets coincide.
pub fn neg_dual_law(set: Vec<Value>) -> ValueLaw {
    ValueLaw {
        name: "NEG∂ ≡ POS (Prop 3e)",
        lhs: Arc::new(DualBase::new(Arc::new(Neg::new(set.clone())))),
        rhs: Arc::new(Pos::new(set)),
    }
}

/// Prop. 3c: `(P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂` for anti-chain summands over the
/// given disjoint carriers (the general case follows by substituting any
/// orders for the summands; the test suite additionally checks EXPLICIT
/// summands).
pub fn linear_sum_dual_law(c1: HashSet<Value>, c2: HashSet<Value>) -> ValueLaw {
    let p1: BaseRef = Arc::new(AntichainBase::new());
    let p2: BaseRef = Arc::new(AntichainBase::new());
    ValueLaw {
        name: "(P1 ⊕ P2)∂ ≡ P2∂ ⊕ P1∂ (Prop 3c)",
        lhs: Arc::new(DualBase::new(Arc::new(
            LinearSum::new(vec![(c1.clone(), p1.clone()), (c2.clone(), p2.clone())])
                .expect("carriers disjoint by caller contract"),
        ))),
        rhs: Arc::new(
            LinearSum::new(vec![
                (c2, Arc::new(DualBase::new(p2)) as BaseRef),
                (c1, Arc::new(DualBase::new(p1)) as BaseRef),
            ])
            .expect("carriers disjoint by caller contract"),
        ),
    }
}

/// Helper constructing an order-embeddable disjoint union for the
/// `Requires::DisjointRanges` laws: two EXPLICIT fragments over disjoint
/// vertex sets.
pub fn disjoint_union_operands() -> (BaseRef, BaseRef) {
    let left: BaseRef = Arc::new(
        crate::base::Explicit::fragment([("b", "a"), ("c", "b")]).expect("acyclic literal"),
    );
    let right: BaseRef =
        Arc::new(crate::base::Explicit::fragment([("y", "x")]).expect("acyclic literal"));
    // Union is constructible because the ranges are provably disjoint.
    let _check = UnionBase::new(left.clone(), right.clone()).expect("disjoint by construction");
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::equiv::{equivalent_on, equivalent_values};
    use crate::term::{around, highest, lowest, neg, pos};
    use pref_relation::{rel, Relation};

    fn sample() -> Relation {
        rel! {
            ("a": Int, "b": Int);
            (1, 9), (1, 2), (5, 0), (5, 9), (3, 3), (2, 2), (2, 3),
        }
    }

    fn operands_shared() -> (Pref, Pref) {
        (pos("a", [1i64, 5]), neg("a", [2i64, 5]))
    }

    fn operands_disjoint() -> (Pref, Pref) {
        (around("a", 2), lowest("b"))
    }

    #[test]
    fn all_unary_laws_hold_on_samples() {
        let r = sample();
        for law in unary_laws() {
            for p in [
                around("a", 2),
                pos("a", [1i64, 5]),
                lowest("b"),
                around("a", 2).pareto(lowest("b")),
                pos("a", [1i64]).prior(highest("b")),
            ] {
                let (lhs, rhs) = (law.build)(p.clone());
                assert!(
                    equivalent_on(&lhs, &rhs, &r).unwrap(),
                    "law `{}` failed for operand {p}",
                    law.name
                );
            }
        }
    }

    #[test]
    fn binary_laws_hold_on_samples() {
        let r = sample();
        for law in binary_laws() {
            let (p1, p2) = match law.requires {
                Requires::SameAttrs => operands_shared(),
                Requires::DisjointAttrs => operands_disjoint(),
                Requires::Nothing => operands_disjoint(),
                Requires::DisjointRanges => continue, // value-level test below
            };
            let (lhs, rhs) = (law.build)(p1, p2);
            assert!(
                equivalent_on(&lhs, &rhs, &r).unwrap(),
                "law `{}` failed",
                law.name
            );
        }
    }

    #[test]
    fn nondiscrimination_also_on_shared_attrs() {
        let r = sample();
        let law = binary_laws()
            .into_iter()
            .find(|l| l.name.contains("Prop 5"))
            .expect("registered");
        let (p1, p2) = operands_shared();
        let (lhs, rhs) = (law.build)(p1, p2);
        assert!(equivalent_on(&lhs, &rhs, &r).unwrap());
    }

    #[test]
    fn ternary_laws_hold_on_samples() {
        let r = sample();
        for law in ternary_laws() {
            let (p1, p2, p3) = match law.requires {
                Requires::SameAttrs => (pos("a", [1i64]), neg("a", [5i64]), around("a", 3)),
                Requires::DisjointRanges => continue,
                _ => (around("a", 2), lowest("b"), highest("a")),
            };
            let (lhs, rhs) = (law.build)(p1, p2, p3);
            assert!(
                equivalent_on(&lhs, &rhs, &r).unwrap(),
                "law `{}` failed",
                law.name
            );
        }
    }

    #[test]
    fn union_laws_at_value_level() {
        // Commutativity of + with provably disjoint EXPLICIT operands.
        let (l, r) = disjoint_union_operands();
        let u1 = UnionBase::new(l.clone(), r.clone()).unwrap();
        let u2 = UnionBase::new(r, l).unwrap();
        let dom: Vec<Value> = ["a", "b", "c", "x", "y", "z"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        assert!(equivalent_values(&u1, &u2, &dom));
    }

    #[test]
    fn value_laws_hold() {
        let dom: Vec<Value> = (0..6).map(Value::from).collect();
        for law in [
            antichain_dual_law(),
            highest_dual_law(),
            pos_dual_law(vec![Value::from(1), Value::from(2)]),
            neg_dual_law(vec![Value::from(1), Value::from(2)]),
        ] {
            assert!(
                equivalent_values(law.lhs.as_ref(), law.rhs.as_ref(), &dom),
                "value law `{}` failed",
                law.name
            );
        }
    }

    #[test]
    fn linear_sum_dual() {
        let c1: HashSet<Value> = [Value::from("a"), Value::from("b")].into_iter().collect();
        let c2: HashSet<Value> = [Value::from("x")].into_iter().collect();
        let law = linear_sum_dual_law(c1, c2);
        let dom: Vec<Value> = ["a", "b", "x", "q"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        assert!(
            equivalent_values(law.lhs.as_ref(), law.rhs.as_ref(), &dom),
            "value law `{}` failed",
            law.name
        );
    }

    #[test]
    fn chains_closed_under_prior() {
        // Prop. 3h: P1 & P2 and P2 & P1 are chains when P1, P2 are.
        let r = sample();
        let p = lowest("a").prior(highest("b"));
        let c = crate::eval::CompiledPref::compile(&p, r.schema()).unwrap();
        let g = crate::graph::BetterGraph::from_relation(&c, &r).unwrap();
        // The sample has no duplicate (a, b) pairs, so the restriction
        // must be a chain.
        assert!(g.is_chain());
    }
}
