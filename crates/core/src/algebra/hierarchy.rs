//! The sub-constructor hierarchies of §3.4.
//!
//! `C1 ≼ C2` ("C1 is a preference sub-constructor of C2") holds when C1's
//! definition is C2's definition under specialising constraints. This
//! module provides the specialisation witnesses as conversion functions —
//! each returns a C2-instance equivalent to the given C1-instance — plus
//! the linear-sum identities of §3.3.2 and the `& ≼ rank(F)` embedding the
//! paper sketches. The tests check order-equivalence extensionally.
//!
//! ```text
//!   POS/NEG   EXPLICIT          SCORE                ⊗      rank(F)
//!      ▲       ▲                 ▲  ▲  ▲             ▲        ▲
//!   NEG  POS/POS        BETWEEN LOWEST HIGHEST       ♦        &
//!      ▲  ▲                ▲
//!       POS             AROUND
//! ```

use std::collections::HashSet;

use pref_relation::Value;

use crate::base::layered::Layer;
use crate::base::{
    AntichainBase, Around, BasePreference, BaseRef, Between, Explicit, Layered, LinearSum, Neg,
    Pos, PosNeg, PosPos, Score,
};
use crate::error::CoreError;
use crate::term::{BasePref, CombineFn, Pref};

/// `AROUND ≼ BETWEEN`: `AROUND(A, z) ≡ BETWEEN(A, [z, z])`.
pub fn around_as_between(a: &Around) -> Between {
    Between::new(a.target().clone(), a.target().clone())
        .expect("degenerate interval [z, z] is always valid")
}

/// `BETWEEN ≼ SCORE`: `f(x) = −distance(x, [low, up])`.
pub fn between_as_score(b: &Between) -> Score {
    let b = b.clone();
    let (low, up) = b.bounds();
    let name = format!("-dist[{low},{up}]");
    Score::new(name, move |v: &Value| b.distance(v).map(|d| -d))
}

/// `AROUND ≼ SCORE` (composition of the two steps above).
pub fn around_as_score(a: &Around) -> Score {
    between_as_score(&around_as_between(a))
}

/// `HIGHEST ≼ SCORE`: `f(x) = x`.
pub fn highest_as_score() -> Score {
    Score::new("identity", |v: &Value| v.ordinal())
}

/// `LOWEST ≼ SCORE`: `f(x) = −x`.
pub fn lowest_as_score() -> Score {
    Score::new("negate", |v: &Value| v.ordinal().map(|o| -o))
}

/// `POS ≼ POS/POS` with `POS2-set = ∅`.
pub fn pos_as_pos_pos(p: &Pos) -> PosPos {
    PosPos::new(p.pos_set().iter().cloned(), Vec::<Value>::new())
        .expect("empty POS2 cannot overlap")
}

/// `POS ≼ POS/NEG` with `NEG-set = ∅`.
pub fn pos_as_pos_neg(p: &Pos) -> PosNeg {
    PosNeg::new(p.pos_set().iter().cloned(), Vec::<Value>::new()).expect("empty NEG cannot overlap")
}

/// `NEG ≼ POS/NEG` with `POS-set = ∅`.
pub fn neg_as_pos_neg(n: &Neg) -> PosNeg {
    PosNeg::new(Vec::<Value>::new(), n.neg_set().iter().cloned()).expect("empty POS cannot overlap")
}

/// `POS/POS ≼ EXPLICIT` with `EXPLICIT-graph = (POS1-set)↔ ⊕ (POS2-set)↔`:
/// edges from every POS2 value up to every POS1 value, with isolated
/// vertices covering the case of an empty peer set.
pub fn pos_pos_as_explicit(p: &PosPos) -> Explicit {
    let edges: Vec<(Value, Value)> = p
        .pos2_set()
        .iter()
        .flat_map(|worse| {
            p.pos1_set()
                .iter()
                .map(move |better| (worse.clone(), better.clone()))
        })
        .collect();
    let isolated: Vec<Value> = p
        .pos1_set()
        .iter()
        .chain(p.pos2_set().iter())
        .cloned()
        .collect();
    Explicit::with_vertices(edges, isolated).expect("bipartite layer graph is acyclic")
}

// ---- linear-sum identities of §3.3.2 -----------------------------------

/// `POS = POS-set↔ ⊕ other-values↔` as a [`Layered`] preference.
pub fn pos_as_linear_sum(p: &Pos) -> Layered {
    Layered::new(vec![Layer::Set(p.pos_set().clone()), Layer::Others]).expect("two disjoint layers")
}

/// `NEG = other-values↔ ⊕ NEG-set↔`.
pub fn neg_as_linear_sum(n: &Neg) -> Layered {
    Layered::new(vec![Layer::Others, Layer::Set(n.neg_set().clone())]).expect("two disjoint layers")
}

/// `POS/NEG = (POS-set↔ ⊕ other-values↔) ⊕ NEG-set↔`.
pub fn pos_neg_as_linear_sum(p: &PosNeg) -> Layered {
    Layered::new(vec![
        Layer::Set(p.pos_set().clone()),
        Layer::Others,
        Layer::Set(p.neg_set().clone()),
    ])
    .expect("three disjoint layers")
}

/// `POS/POS = (POS1-set↔ ⊕ POS2-set↔) ⊕ other-values↔`.
pub fn pos_pos_as_linear_sum(p: &PosPos) -> Layered {
    Layered::new(vec![
        Layer::Set(p.pos1_set().clone()),
        Layer::Set(p.pos2_set().clone()),
        Layer::Others,
    ])
    .expect("three disjoint layers")
}

/// `EXPLICIT = E ⊕ other-values↔` over an enumerated domain sample: the
/// explicit order on its vertices, linear-summed with an anti-chain on
/// the remaining values.
pub fn explicit_as_linear_sum(e: &Explicit, dom: &[Value]) -> Result<LinearSum, CoreError> {
    let vertex_set: HashSet<Value> = e.vertices().iter().cloned().collect();
    let others: HashSet<Value> = dom
        .iter()
        .filter(|v| !vertex_set.contains(v))
        .cloned()
        .collect();
    let e_ref: BaseRef = std::sync::Arc::new(e.clone());
    LinearSum::new(vec![
        (vertex_set, e_ref),
        (others, std::sync::Arc::new(AntichainBase::new()) as BaseRef),
    ])
}

// ---- & ≼ rank(F) --------------------------------------------------------

/// The `& ≼ rank(F)` embedding the paper sketches ("an obvious possibility
/// is to verify that & ≼ rank(F) holds by determining a properly weighted
/// F"): for two SCORE-family operands where
///
/// * `P1`'s scores are value-injective and quantised to multiples of
///   `granularity` (e.g. HIGHEST on an integer column), and
/// * `P2`'s scores are value-injective with range width `< width`,
///
/// `F(x1, x2) = x1 + x2 · granularity / (width · (1 + ε))` orders tuples
/// exactly like `P1 & P2`: the second component can never overturn a
/// first-component difference.
///
/// The preconditions are essential: without injectivity, `&` leaves
/// equal-scored-but-unequal values unranked while `rank(F)` ranks them,
/// and a lexicographic order on ℝ² admits no order-embedding into ℝ at
/// all without the quantisation assumption.
pub fn prior_as_rank(
    p1: BasePref,
    p2: BasePref,
    granularity: f64,
    width: f64,
) -> Result<Pref, CoreError> {
    let scale = granularity / (width * (1.0 + 1e-9));
    Pref::rank(
        CombineFn::weighted_sum(vec![1.0, scale]),
        vec![Pref::Base(p1), Pref::Base(p2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::equiv::{equivalent_on, equivalent_values};
    use crate::base::Highest;
    use crate::term::{highest, Pref};
    use pref_relation::rel;

    fn int_dom(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::from).collect()
    }

    fn str_dom(names: &[&str]) -> Vec<Value> {
        names.iter().map(|s| Value::from(*s)).collect()
    }

    #[test]
    fn around_between_score_chain() {
        let a = Around::new(7);
        let b = around_as_between(&a);
        let s = around_as_score(&a);
        let dom = int_dom(0..15);
        assert!(equivalent_values(&a, &b, &dom), "AROUND ≢ BETWEEN[z,z]");
        assert!(equivalent_values(&a, &s, &dom), "AROUND ≢ SCORE(-dist)");
    }

    #[test]
    fn extremal_as_score() {
        let dom = int_dom(-5..5);
        assert!(equivalent_values(
            &crate::base::Highest::new(),
            &highest_as_score(),
            &dom
        ));
        assert!(equivalent_values(
            &crate::base::Lowest::new(),
            &lowest_as_score(),
            &dom
        ));
    }

    #[test]
    fn pos_family_specialisations() {
        let dom = str_dom(&["a", "b", "c", "d", "e"]);
        let pos = Pos::new(["a", "b"]);
        assert!(equivalent_values(&pos, &pos_as_pos_pos(&pos), &dom));
        assert!(equivalent_values(&pos, &pos_as_pos_neg(&pos), &dom));
        let neg = Neg::new(["d"]);
        assert!(equivalent_values(&neg, &neg_as_pos_neg(&neg), &dom));
    }

    #[test]
    fn pos_pos_as_explicit_graph() {
        let dom = str_dom(&["a", "b", "c", "d", "e"]);
        let pp = PosPos::new(["a"], ["b", "c"]).unwrap();
        assert!(equivalent_values(&pp, &pos_pos_as_explicit(&pp), &dom));
        // Degenerate: empty POS2 needs the isolated-vertex support.
        let pp2 = PosPos::new(["a"], Vec::<Value>::new()).unwrap();
        assert!(equivalent_values(&pp2, &pos_pos_as_explicit(&pp2), &dom));
    }

    #[test]
    fn linear_sum_identities() {
        let dom = str_dom(&["a", "b", "x", "y", "z"]);
        let pos = Pos::new(["a", "b"]);
        assert!(equivalent_values(&pos, &pos_as_linear_sum(&pos), &dom));
        let neg = Neg::new(["x"]);
        assert!(equivalent_values(&neg, &neg_as_linear_sum(&neg), &dom));
        let pn = PosNeg::new(["a"], ["x", "y"]).unwrap();
        assert!(equivalent_values(&pn, &pos_neg_as_linear_sum(&pn), &dom));
        let pp = PosPos::new(["a"], ["b"]).unwrap();
        assert!(equivalent_values(&pp, &pos_pos_as_linear_sum(&pp), &dom));
    }

    #[test]
    fn explicit_linear_sum_identity() {
        let dom = str_dom(&["a", "b", "c", "q", "r"]);
        let e = Explicit::new([("b", "a"), ("c", "b")]).unwrap();
        let ls = explicit_as_linear_sum(&e, &dom).unwrap();
        assert!(equivalent_values(&e, &ls, &dom));
    }

    #[test]
    fn prior_embeds_into_rank() {
        // P1 = HIGHEST(a) on integers (granularity 1), P2 = HIGHEST(b)
        // with b ∈ [0, 10) (width 10).
        let r = rel! {
            ("a": Int, "b": Int);
            (1, 9), (1, 2), (5, 0), (5, 9), (3, 3), (2, 2), (2, 9), (4, 0),
        };
        let prior = highest("a").prior(highest("b"));
        let ranked = prior_as_rank(
            BasePref::new("a", Highest::new()),
            BasePref::new("b", Highest::new()),
            1.0,
            10.0,
        )
        .unwrap();
        assert!(equivalent_on(&prior, &ranked, &r).unwrap());
    }

    #[test]
    fn intersection_is_sub_constructor_of_pareto() {
        // Prop. 6: ♦ ≼ ⊗ — on shared attributes they coincide.
        let r = rel! { ("a": Int); (1,), (2,), (3,), (4,) };
        let p1 = crate::term::pos("a", [1i64, 2]);
        let p2 = crate::term::neg("a", [2i64, 3]);
        let pareto = Pref::Pareto(vec![p1.clone(), p2.clone()]);
        let inter = p1.intersect(p2).unwrap();
        assert!(equivalent_on(&pareto, &inter, &r).unwrap());
    }
}
