//! Parsing preference terms from their paper-notation text form — the
//! inverse of `Display`.
//!
//! This is the storage format of the [`crate::repo`] preference
//! repository (§7 roadmap: "a persistent preference repository"). Every
//! term built from the standard constructors round-trips:
//!
//! ```
//! use pref_core::prelude::*;
//! use pref_core::text::parse_term;
//!
//! let p = neg("color", ["gray"])
//!     .prior(lowest("price").pareto(around("horsepower", 100)));
//! let parsed = parse_term(&p.to_string()).unwrap();
//! assert_eq!(parsed, p);
//! ```
//!
//! `SCORE` and `rank(F)` carry opaque functions; parsing resolves their
//! *names* against a [`FnRegistry`]. The built-in registry knows the
//! functions this crate itself generates (`identity`, `negate`,
//! `-dist[lo,hi]`, `sum`, `min`, `max`, `wsum[w1,…]`); applications
//! register their own.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use pref_relation::{AttrSet, Date, Value};

use crate::base::layered::Layer;
use crate::base::score::ScoreFn;
use crate::base::{
    Around, BaseRef, Between, Explicit, Highest, Layered, Lowest, Neg, Pos, PosNeg, PosPos, Score,
};
use crate::error::CoreError;
use crate::term::{BasePref, CombineFn, Pref};

/// Errors raised while parsing a term's text form.
#[derive(Debug, Clone)]
pub enum TextError {
    /// Lexical or syntactic problem.
    Parse { pos: usize, message: String },
    /// A SCORE or combining function name is not registered.
    UnknownFunction { name: String },
    /// Constructor preconditions failed (overlapping sets, cycles, …).
    Core(String),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Parse { pos, message } => {
                write!(f, "term parse error at byte {pos}: {message}")
            }
            TextError::UnknownFunction { name } => {
                write!(
                    f,
                    "unknown scoring/combining function `{name}` (register it)"
                )
            }
            TextError::Core(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<CoreError> for TextError {
    fn from(e: CoreError) -> Self {
        TextError::Core(e.to_string())
    }
}

/// Registry resolving SCORE / combining function names at parse time.
#[derive(Clone, Default)]
pub struct FnRegistry {
    scores: HashMap<String, ScoreFn>,
    combines: HashMap<String, CombineFn>,
}

impl FnRegistry {
    /// Registry pre-loaded with the names this crate generates.
    pub fn builtin() -> Self {
        let mut r = FnRegistry::default();
        r.register_score("identity", |v: &Value| v.ordinal());
        r.register_score("negate", |v: &Value| v.ordinal().map(|o| -o));
        r.register_combine(CombineFn::sum());
        r.register_combine(CombineFn::min());
        r.register_combine(CombineFn::max());
        r
    }

    /// Register a scoring function under a name.
    pub fn register_score(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&Value) -> Option<f64> + Send + Sync + 'static,
    ) {
        self.scores.insert(name.into(), Arc::new(f));
    }

    /// Register a combining function under its own name.
    pub fn register_combine(&mut self, f: CombineFn) {
        self.combines.insert(f.name().to_string(), f);
    }

    fn score(&self, name: &str) -> Result<Score, TextError> {
        if let Some(f) = self.scores.get(name) {
            return Ok(Score::from_arc(name, Arc::clone(f)));
        }
        // `-dist[lo,up]` names are self-describing (hierarchy module).
        if let Some(body) = name
            .strip_prefix("-dist[")
            .and_then(|s| s.strip_suffix(']'))
        {
            let parts: Vec<&str> = body.splitn(2, ',').collect();
            if parts.len() == 2 {
                if let (Ok(lo), Ok(up)) = (
                    parts[0].trim().parse::<f64>(),
                    parts[1].trim().parse::<f64>(),
                ) {
                    if let Ok(b) = Between::new(lo, up) {
                        return Ok(crate::algebra::hierarchy::between_as_score(&b));
                    }
                }
            }
        }
        Err(TextError::UnknownFunction {
            name: name.to_string(),
        })
    }

    fn combine(&self, name: &str) -> Result<CombineFn, TextError> {
        if let Some(f) = self.combines.get(name) {
            return Ok(f.clone());
        }
        // `wsum[w1,w2,…]` names are self-describing.
        if let Some(body) = name.strip_prefix("wsum[").and_then(|s| s.strip_suffix(']')) {
            let weights: Result<Vec<f64>, _> =
                body.split(',').map(|w| w.trim().parse::<f64>()).collect();
            if let Ok(weights) = weights {
                return Ok(CombineFn::weighted_sum(weights));
            }
        }
        Err(TextError::UnknownFunction {
            name: name.to_string(),
        })
    }
}

impl fmt::Debug for FnRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnRegistry")
            .field("scores", &self.scores.keys().collect::<Vec<_>>())
            .field("combines", &self.combines.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Parse a term with the built-in function registry.
pub fn parse_term(input: &str) -> Result<Pref, TextError> {
    parse_term_with(input, &FnRegistry::builtin())
}

/// Parse a term, resolving function names against `registry`.
pub fn parse_term_with(input: &str, registry: &FnRegistry) -> Result<Pref, TextError> {
    let mut p = TermParser {
        chars: input.char_indices().collect(),
        pos: 0,
        registry,
    };
    let term = p.term()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return p.err("end of term");
    }
    Ok(term)
}

struct TermParser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    registry: &'a FnRegistry,
}

impl TermParser<'_> {
    fn byte_pos(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|(b, _)| *b)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|(b, c)| b + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn err<T>(&self, expected: &str) -> Result<T, TextError> {
        let found: String = self.chars[self.pos..]
            .iter()
            .take(12)
            .map(|(_, c)| *c)
            .collect();
        Err(TextError::Parse {
            pos: self.byte_pos(),
            message: format!("expected {expected}, found `{found}`"),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|(_, c)| c.is_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).map(|(_, c)| *c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TextError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(&format!("`{c}`"))
        }
    }

    /// Word of identifier-ish characters (constructor or attribute name).
    fn word(&mut self) -> Result<String, TextError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|(_, c)| c.is_alphanumeric() || matches!(c, '_' | '-' | '/' | '.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("a name");
        }
        Ok(self.chars[start..self.pos]
            .iter()
            .map(|(_, c)| *c)
            .collect())
    }

    /// Raw capture until the given closer, balancing (), [] and {}.
    fn raw_until(&mut self, closer: char) -> Result<String, TextError> {
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(&(_, c)) = self.chars.get(self.pos) {
            if depth == 0 && c == closer {
                return Ok(self.chars[start..self.pos]
                    .iter()
                    .map(|(_, c)| *c)
                    .collect());
            }
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
        self.err(&format!("`{closer}`"))
    }

    // ---- grammar ----------------------------------------------------------

    /// term := compound | antichain | rank | basepref
    fn term(&mut self) -> Result<Pref, TextError> {
        match self.peek() {
            Some('(') => self.compound(),
            Some('{') => self.antichain(),
            _ => {
                // `rank[...]` or a base preference; both start with a word.
                let save = self.pos;
                let w = self.word()?;
                if w == "rank" {
                    self.rank()
                } else {
                    self.pos = save;
                    self.base_pref()
                }
            }
        }
    }

    /// compound := '(' term { op term } ')' ['∂'] with one operator kind
    /// per parenthesis group (as `Display` prints).
    fn compound(&mut self) -> Result<Pref, TextError> {
        self.expect('(')?;
        let first = self.term()?;
        let mut children = vec![first];
        let mut op: Option<char> = None;
        loop {
            match self.peek() {
                Some(')') => {
                    self.pos += 1;
                    break;
                }
                Some(c @ ('⊗' | '&' | '♦' | '+')) => {
                    if *op.get_or_insert(c) != c {
                        return self.err("a single operator kind per group");
                    }
                    self.pos += 1;
                    children.push(self.term()?);
                }
                _ => return self.err("`⊗`, `&`, `♦`, `+` or `)`"),
            }
        }
        let inner = match (op, children.len()) {
            (None, 1) => children.pop().expect("len checked"),
            // Fold through the builder methods so nested groups flatten
            // into the canonical n-ary form (sound by Prop. 2b/2c).
            (Some('⊗'), _) => children
                .into_iter()
                .reduce(Pref::pareto)
                .expect("at least two children"),
            (Some('&'), _) => children
                .into_iter()
                .reduce(Pref::prior)
                .expect("at least two children"),
            (Some('♦'), 2) => {
                let r = children.pop().expect("len checked");
                let l = children.pop().expect("len checked");
                Pref::Inter(Arc::new(l), Arc::new(r))
            }
            (Some('+'), 2) => {
                let r = children.pop().expect("len checked");
                let l = children.pop().expect("len checked");
                Pref::Union(Arc::new(l), Arc::new(r))
            }
            _ => return self.err("binary ♦/+ or n-ary ⊗/&"),
        };
        Ok(if self.eat('∂') { inner.dual() } else { inner })
    }

    /// antichain := '{' attr {',' attr} '}' '↔'
    fn antichain(&mut self) -> Result<Pref, TextError> {
        self.expect('{')?;
        let mut attrs = vec![self.word()?];
        while self.eat(',') {
            attrs.push(self.word()?);
        }
        self.expect('}')?;
        self.expect('↔')?;
        Ok(Pref::Antichain(AttrSet::new(
            attrs.iter().map(String::as_str),
        )))
    }

    /// rank := 'rank' '[' rawname ']' '(' basepref {',' basepref} ')'
    fn rank(&mut self) -> Result<Pref, TextError> {
        self.expect('[')?;
        let name = self.raw_until(']')?;
        self.expect(']')?;
        let combine = self.registry.combine(name.trim())?;
        self.expect('(')?;
        let mut inputs = vec![self.base_pref()?];
        while self.eat(',') {
            inputs.push(self.base_pref()?);
        }
        self.expect(')')?;
        Ok(Pref::rank(combine, inputs)?)
    }

    /// basepref := NAME '(' attr [';' params] ')'
    fn base_pref(&mut self) -> Result<Pref, TextError> {
        let name = self.word()?;
        self.expect('(')?;
        let attr = self.word()?;
        let base: BaseRef = match name.as_str() {
            "LOWEST" => Arc::new(Lowest::new()),
            "HIGHEST" => Arc::new(Highest::new()),
            "POS" => {
                self.expect(';')?;
                Arc::new(Pos::new(self.value_set()?))
            }
            "NEG" => {
                self.expect(';')?;
                Arc::new(Neg::new(self.value_set()?))
            }
            "POS/NEG" => {
                self.expect(';')?;
                let pos = self.value_set()?;
                self.expect(';')?;
                let neg = self.value_set()?;
                Arc::new(PosNeg::new(pos, neg)?)
            }
            "POS/POS" => {
                self.expect(';')?;
                let pos1 = self.value_set()?;
                self.expect(';')?;
                let pos2 = self.value_set()?;
                Arc::new(PosPos::new(pos1, pos2)?)
            }
            "AROUND" => {
                self.expect(';')?;
                Arc::new(Around::new(self.value()?))
            }
            "BETWEEN" => {
                self.expect(';')?;
                self.expect('[')?;
                let lo = self.value()?;
                self.expect(',')?;
                let up = self.value()?;
                self.expect(']')?;
                Arc::new(Between::new(lo, up)?)
            }
            "EXPLICIT" | "EXPLICIT-FRAGMENT" => {
                self.expect(';')?;
                let edges = self.edge_set()?;
                if name == "EXPLICIT" {
                    Arc::new(Explicit::new(edges)?)
                } else {
                    Arc::new(Explicit::fragment(edges)?)
                }
            }
            "LAYERED" => {
                self.expect(';')?;
                let mut layers = vec![self.layer()?];
                while self.eat('⊕') {
                    layers.push(self.layer()?);
                }
                Arc::new(Layered::new(layers)?)
            }
            "SCORE" => {
                self.expect(';')?;
                let fname = self.raw_until(')')?;
                Arc::new(self.registry.score(fname.trim())?)
            }
            other => {
                return Err(TextError::Parse {
                    pos: self.byte_pos(),
                    message: format!("unknown base constructor `{other}`"),
                })
            }
        };
        self.expect(')')?;
        let pref = Pref::Base(BasePref::from_ref(attr.as_str(), base));
        Ok(pref)
    }

    fn layer(&mut self) -> Result<Layer, TextError> {
        if self.peek() == Some('{') {
            Ok(Layer::Set(self.value_set()?.into_iter().collect()))
        } else {
            let w = self.word()?;
            if w == "others" {
                Ok(Layer::Others)
            } else {
                self.err("`others` or a value set")
            }
        }
    }

    /// value_set := '{' [value {',' value}] '}'
    fn value_set(&mut self) -> Result<Vec<Value>, TextError> {
        self.expect('{')?;
        let mut out = Vec::new();
        if self.peek() != Some('}') {
            out.push(self.value()?);
            while self.eat(',') {
                out.push(self.value()?);
            }
        }
        self.expect('}')?;
        Ok(out)
    }

    /// edge_set := '{' ['(' value ',' value ')' {',' …}] '}'
    fn edge_set(&mut self) -> Result<Vec<(Value, Value)>, TextError> {
        self.expect('{')?;
        let mut out = Vec::new();
        if self.peek() != Some('}') {
            loop {
                self.expect('(')?;
                let worse = self.value()?;
                self.expect(',')?;
                let better = self.value()?;
                self.expect(')')?;
                out.push((worse, better));
                if !self.eat(',') {
                    break;
                }
            }
        }
        self.expect('}')?;
        Ok(out)
    }

    /// value := 'string' | number | date | true | false | NULL
    fn value(&mut self) -> Result<Value, TextError> {
        match self.peek() {
            Some('\'') => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.chars.get(self.pos) {
                        None => return self.err("closing `'`"),
                        Some(&(_, '\'')) => {
                            if self.chars.get(self.pos + 1).map(|(_, c)| *c) == Some('\'') {
                                s.push('\'');
                                self.pos += 2;
                            } else {
                                self.pos += 1;
                                break;
                            }
                        }
                        Some(&(_, c)) => {
                            s.push(c);
                            self.pos += 1;
                        }
                    }
                }
                Ok(Value::from(s))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.pos += 1;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|(_, c)| c.is_ascii_digit() || *c == '.' || *c == '/')
                {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos]
                    .iter()
                    .map(|(_, c)| *c)
                    .collect();
                if text.contains('/') {
                    Date::parse(&text).map(Value::from).ok_or(TextError::Parse {
                        pos: self.byte_pos(),
                        message: format!("bad date literal `{text}`"),
                    })
                } else if text.contains('.') {
                    text.parse::<f64>()
                        .map(Value::from)
                        .map_err(|_| TextError::Parse {
                            pos: self.byte_pos(),
                            message: format!("bad float literal `{text}`"),
                        })
                } else {
                    text.parse::<i64>()
                        .map(Value::from)
                        .map_err(|_| TextError::Parse {
                            pos: self.byte_pos(),
                            message: format!("bad integer literal `{text}`"),
                        })
                }
            }
            _ => {
                let w = self.word()?;
                match w.as_str() {
                    "true" => Ok(Value::from(true)),
                    "false" => Ok(Value::from(false)),
                    "NULL" => Ok(Value::Null),
                    other => Err(TextError::Parse {
                        pos: self.byte_pos(),
                        message: format!("bad value literal `{other}`"),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{
        antichain, around, between, explicit, highest, layered, lowest, neg, pos, pos_neg, pos_pos,
    };

    fn roundtrip(p: &Pref) {
        let text = p.to_string();
        let parsed = parse_term(&text).unwrap_or_else(|e| panic!("cannot parse `{text}`: {e}"));
        assert_eq!(&parsed, p, "round-trip changed `{text}` → `{parsed}`");
    }

    #[test]
    fn base_constructors_roundtrip() {
        roundtrip(&pos("color", ["yellow", "green"]));
        roundtrip(&neg("color", ["gray"]));
        roundtrip(&pos_neg("color", ["blue"], ["gray", "red"]).unwrap());
        roundtrip(&pos_pos("category", ["cabriolet"], ["roadster"]).unwrap());
        roundtrip(&around("price", 40_000));
        roundtrip(&around("start", Date::parse("2001/11/23").unwrap()));
        roundtrip(&between("price", 10_000, 20_000).unwrap());
        roundtrip(&lowest("price"));
        roundtrip(&highest("year"));
        roundtrip(&explicit("color", [("green", "yellow"), ("yellow", "white")]).unwrap());
        roundtrip(
            &layered(
                "color",
                vec![Layer::of(["a"]), Layer::Others, Layer::of(["z"])],
            )
            .unwrap(),
        );
    }

    #[test]
    fn compound_terms_roundtrip() {
        let q1 = neg("color", ["gray"]).prior(
            pos_pos("category", ["cabriolet"], ["roadster"])
                .unwrap()
                .pareto(pos("transmission", ["automatic"]))
                .pareto(around("horsepower", 100))
                .prior(lowest("price")),
        );
        roundtrip(&q1);
        roundtrip(&q1.clone().dual());
        roundtrip(&antichain(["make", "color"]));
        roundtrip(&antichain(["make"]).prior(around("price", 40_000)));
        roundtrip(&lowest("price").intersect(highest("price")).unwrap());
        roundtrip(&Pref::Union(
            Arc::new(lowest("a")),
            Arc::new(antichain(["a"])),
        ));
    }

    #[test]
    fn rank_roundtrips_with_builtin_names() {
        let p = Pref::rank(
            CombineFn::weighted_sum(vec![1.0, 2.0]),
            vec![
                Pref::base("a", crate::algebra::hierarchy::highest_as_score()),
                Pref::base("b", crate::algebra::hierarchy::lowest_as_score()),
            ],
        )
        .unwrap();
        roundtrip(&p);
        let q = Pref::rank(CombineFn::sum(), vec![around("a", 5), highest("b")]).unwrap();
        roundtrip(&q);
    }

    #[test]
    fn score_names_resolve_via_registry() {
        let mut reg = FnRegistry::builtin();
        reg.register_score("hp-per-euro", |v: &Value| v.ordinal());
        let text = "SCORE(power; hp-per-euro)";
        let p = parse_term_with(text, &reg).unwrap();
        assert_eq!(p.to_string(), text);
        assert!(matches!(
            parse_term(text),
            Err(TextError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn self_describing_names_need_no_registration() {
        // `-dist[lo,up]` (hierarchy) and `wsum[w…]` reconstruct themselves.
        let b = Between::new(5, 9).unwrap();
        let s = crate::algebra::hierarchy::between_as_score(&b);
        let p = Pref::base("a", s);
        roundtrip(&p);
    }

    #[test]
    fn string_escapes_roundtrip() {
        roundtrip(&pos("name", ["O'Hara", "plain"]));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(parse_term(""), Err(TextError::Parse { .. })));
        assert!(matches!(
            parse_term("BOGUS(a)"),
            Err(TextError::Parse { .. })
        ));
        assert!(matches!(
            parse_term("(LOWEST(a) ⊗ HIGHEST(b)"),
            Err(TextError::Parse { .. })
        ));
        assert!(matches!(
            parse_term("LOWEST(a) garbage"),
            Err(TextError::Parse { .. })
        ));
        // mixed operators in one group are not Display output
        assert!(matches!(
            parse_term("(LOWEST(a) ⊗ HIGHEST(b) & LOWEST(c))"),
            Err(TextError::Parse { .. })
        ));
        // constructor preconditions still apply
        assert!(matches!(
            parse_term("POS/NEG(c; {'x'}; {'x'})"),
            Err(TextError::Core(_))
        ));
    }
}
