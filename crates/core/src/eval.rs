//! Compilation of preference terms against a schema, and the strict
//! partial order semantics of the complex constructors (Def. 8–12).
//!
//! Terms are *logical*; a [`CompiledPref`] is the *physical* form with all
//! attribute names resolved to column indices once, so the O(n²)-ish inner
//! loops of BMO evaluation never touch a hash map.
//!
//! The component equality `xi = yi` used by Pareto and prioritised
//! accumulation is equality of the sub-preference's attribute projection
//! ([`pref_relation::Tuple::eq_on`]). This single definition covers both
//! Example 2 (disjoint attribute sets) and Example 3 (shared attribute
//! sets) of the paper.

use std::collections::HashMap;
use std::sync::Arc;

use pref_relation::{Relation, Schema, Tuple, Value};

use crate::base::{base_eq, BaseRef, Reachability};
use crate::error::CoreError;
use crate::term::{CombineFn, Pref};

/// A preference term compiled against a schema.
#[derive(Debug, Clone)]
pub struct CompiledPref {
    node: Node,
}

#[derive(Debug, Clone)]
enum Node {
    Base {
        col: usize,
        base: BaseRef,
    },
    Antichain,
    Dual(Box<Node>),
    Pareto(Vec<Child>),
    Prior(Vec<Child>),
    Rank {
        combine: CombineFn,
        inputs: Vec<(usize, BaseRef)>,
    },
    Inter(Box<Node>, Box<Node>),
    Union(Box<Node>, Box<Node>),
}

/// A Pareto/Prior operand together with the columns its attribute
/// projection spans (for the `xi = yi` test).
#[derive(Debug, Clone)]
struct Child {
    node: Node,
    eq_cols: Vec<usize>,
}

impl CompiledPref {
    /// Resolve every attribute of `pref` against `schema`.
    pub fn compile(pref: &Pref, schema: &Schema) -> Result<CompiledPref, CoreError> {
        Ok(CompiledPref {
            node: compile_node(pref, schema)?,
        })
    }

    /// The strict better-than test: `x <P y` — is `y` better than `x`?
    pub fn better(&self, x: &Tuple, y: &Tuple) -> bool {
        self.node.better(x, y)
    }

    /// A utility compatible with the order, when one exists:
    /// `x <P y ⟹ utility(x) < utility(y)`. Available for SCORE-family
    /// bases, `rank(F)` with a monotone `F` is the caller's obligation,
    /// and Pareto combinations of scored operands (sum of scores).
    ///
    /// Used by sort-based evaluation (SFS presorting) and top-k.
    pub fn utility(&self, t: &Tuple) -> Option<f64> {
        self.node.utility(t)
    }

    /// Per-dimension score vector for Pareto-of-chains terms — the input
    /// format of the divide & conquer skyline algorithms (\[KLP75\]/\[BKS01\],
    /// which require every dimension to be a LOWEST/HIGHEST-style chain).
    /// `None` when the term is not of that restricted shape.
    pub fn score_vector(&self, t: &Tuple) -> Option<Vec<f64>> {
        let dims = self.chain_dims()?;
        Some(
            dims.iter()
                .map(|(col, base)| base.score(&t[*col]).unwrap_or(f64::NEG_INFINITY))
                .collect(),
        )
    }

    /// Materialize a [`ScoreMatrix`] for this preference over `r`: a
    /// one-pass, columnar encoding of everything `better` needs, so the
    /// O(n²)-ish dominance loops of BMO evaluation become plain `f64`/`u32`
    /// comparisons instead of term-tree walks over [`Value`]s.
    ///
    /// EXPLICIT base preferences materialize too, via per-row vertex ids
    /// plus the graph's reachability bitset ([`Reachability`]); the
    /// matrix reports that through [`ScoreMatrix::explicit_backend`].
    ///
    /// Returns `None` when the term (or a value in the relation) is not
    /// representable — intersection and disjoint-union aggregation,
    /// chains over non-numeric columns — in which case callers fall back
    /// to the generic [`CompiledPref::better`] path.
    ///
    /// `r` must have the schema this preference was compiled against.
    ///
    /// [`Value`]: pref_relation::Value
    pub fn score_matrix(&self, r: &Relation) -> Option<ScoreMatrix> {
        ScoreMatrix::build(&self.node, r)
    }

    /// Would [`CompiledPref::score_matrix`] succeed on `r`? An
    /// allocation-free probe (per-column scan with early exit) for
    /// planners that must report the backend without paying for the
    /// materialization — `EXPLAIN` latency stays O(n) scans, not
    /// matrix assembly.
    pub fn supports_matrix(&self, r: &Relation) -> bool {
        supports(&self.node, r)
    }

    /// A stable *structural fingerprint* of the compiled term: equal for
    /// two compilations of syntactically equal terms against the same
    /// schema (same resolved column indices, same base constructors with
    /// the same printed parameters), and different with overwhelming
    /// probability otherwise. The fingerprint is a pure function of the
    /// compiled structure — no addresses, no hash-map iteration order —
    /// so it is reproducible across processes and suitable as one half of
    /// a `(relation generation, term fingerprint)` cache key.
    ///
    /// Base preferences are identified by constructor name plus printed
    /// parameters, exactly like [`crate::base::base_eq`]; custom `SCORE`
    /// functions must carry distinct names to be distinguishable.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        self.node.fingerprint_into(&mut h);
        h.finish()
    }

    /// Does the term contain EXPLICIT base preferences (the sub-terms the
    /// score matrix materializes via reachability bitsets)? Structural
    /// probe for `EXPLAIN`-style backend reporting.
    pub fn has_explicit(&self) -> bool {
        self.node.has_explicit()
    }

    /// Does the compiled term contain parameterized shapes
    /// ([`crate::param::ParamBase`]) that must be [bound](CompiledPref::bind)
    /// before evaluation? While unbound, [`CompiledPref::fingerprint`] is
    /// the **shape fingerprint**: stable across bindings, with `$n` in
    /// the slot positions.
    pub fn has_params(&self) -> bool {
        self.node.has_params()
    }

    /// The `$n` slot indices the compiled shapes read (sorted,
    /// deduplicated; empty for concrete terms).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.node.collect_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Patch every parameter slot with its bound value
    /// (`values[0] = $1`), producing a fully concrete compiled term.
    ///
    /// This is the compiled half of prepared-statement binding: the node
    /// tree, every resolved column index and every equality-projection
    /// layout (`eq_cols`) are preserved verbatim — only the slot-bearing
    /// base handles are swapped for their instantiations. No AST walk,
    /// no schema lookup, no re-derivation of dominance-key layouts. The
    /// bound term's [`fingerprint`](CompiledPref::fingerprint) equals
    /// the fingerprint a fresh compile of the bound term would produce,
    /// so matrices cached for either route are shared.
    pub fn bind(&self, values: &[Value]) -> Result<CompiledPref, CoreError> {
        Ok(CompiledPref {
            node: self.node.bind(values)?,
        })
    }

    /// The chain dimensions of a `SKYLINE OF`-shaped term (§6.1): a Pareto
    /// accumulation in which every operand is a chain with an
    /// order-injective score (LOWEST/HIGHEST).
    pub fn chain_dims(&self) -> Option<Vec<(usize, BaseRef)>> {
        match &self.node {
            Node::Pareto(children) => {
                let mut dims = Vec::with_capacity(children.len());
                for c in children {
                    match &c.node {
                        Node::Base { col, base } if base.is_chain() && base.is_numerical() => {
                            dims.push((*col, base.clone()));
                        }
                        _ => return None,
                    }
                }
                Some(dims)
            }
            Node::Base { col, base } if base.is_chain() && base.is_numerical() => {
                Some(vec![(*col, base.clone())])
            }
            _ => None,
        }
    }
}

fn compile_node(pref: &Pref, schema: &Schema) -> Result<Node, CoreError> {
    Ok(match pref {
        Pref::Base(b) => Node::Base {
            col: schema
                .index_of(&b.attr)
                .ok_or_else(|| CoreError::UnknownAttr(b.attr.clone()))?,
            base: b.base.clone(),
        },
        Pref::Antichain(attrs) => {
            // Resolve eagerly so unknown attributes fail at compile time
            // even though the anti-chain itself never compares columns.
            for a in attrs.iter() {
                schema
                    .index_of(a)
                    .ok_or_else(|| CoreError::UnknownAttr(a.clone()))?;
            }
            Node::Antichain
        }
        Pref::Dual(p) => Node::Dual(Box::new(compile_node(p, schema)?)),
        Pref::Pareto(ps) => Node::Pareto(compile_children(ps, schema)?),
        Pref::Prior(ps) => Node::Prior(compile_children(ps, schema)?),
        Pref::Rank(combine, bases) => {
            let mut inputs = Vec::with_capacity(bases.len());
            for b in bases {
                let col = schema
                    .index_of(&b.attr)
                    .ok_or_else(|| CoreError::UnknownAttr(b.attr.clone()))?;
                inputs.push((col, b.base.clone()));
            }
            Node::Rank {
                combine: combine.clone(),
                inputs,
            }
        }
        Pref::Inter(l, r) => Node::Inter(
            Box::new(compile_node(l, schema)?),
            Box::new(compile_node(r, schema)?),
        ),
        Pref::Union(l, r) => Node::Union(
            Box::new(compile_node(l, schema)?),
            Box::new(compile_node(r, schema)?),
        ),
    })
}

fn compile_children(ps: &[Pref], schema: &Schema) -> Result<Vec<Child>, CoreError> {
    ps.iter()
        .map(|p| {
            let node = compile_node(p, schema)?;
            let attrs = p.attributes();
            let mut eq_cols = Vec::with_capacity(attrs.len());
            for a in attrs.iter() {
                eq_cols.push(
                    schema
                        .index_of(a)
                        .ok_or_else(|| CoreError::UnknownAttr(a.clone()))?,
                );
            }
            Ok(Child { node, eq_cols })
        })
        .collect()
}

/// FNV-1a accumulator for structural fingerprints. Deliberately *not*
/// `std::hash::Hasher`-based: the std trait gives no stability guarantee
/// across releases, while cache keys derived here must be reproducible.
struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Structural tag separating node kinds and field boundaries.
    fn tag(&mut self, t: u8) {
        self.byte(t);
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` differ.
    fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl Node {
    fn fingerprint_into(&self, h: &mut Fingerprint) {
        match self {
            Node::Base { col, base } => {
                h.tag(1);
                h.word(*col as u64);
                h.str(base.name());
                h.str(&base.params());
            }
            Node::Antichain => h.tag(2),
            Node::Dual(inner) => {
                h.tag(3);
                inner.fingerprint_into(h);
            }
            Node::Pareto(children) | Node::Prior(children) => {
                h.tag(if matches!(self, Node::Pareto(_)) {
                    4
                } else {
                    5
                });
                h.word(children.len() as u64);
                for c in children {
                    c.node.fingerprint_into(h);
                    h.word(c.eq_cols.len() as u64);
                    for col in &c.eq_cols {
                        h.word(*col as u64);
                    }
                }
            }
            Node::Rank { combine, inputs } => {
                h.tag(6);
                h.str(combine.name());
                h.word(inputs.len() as u64);
                for (col, base) in inputs {
                    h.word(*col as u64);
                    h.str(base.name());
                    h.str(&base.params());
                }
            }
            Node::Inter(l, r) | Node::Union(l, r) => {
                h.tag(if matches!(self, Node::Inter(..)) {
                    7
                } else {
                    8
                });
                l.fingerprint_into(h);
                r.fingerprint_into(h);
            }
        }
    }

    fn has_explicit(&self) -> bool {
        match self {
            Node::Base { base, .. } => base.as_explicit().is_some(),
            Node::Antichain | Node::Rank { .. } => false,
            Node::Dual(inner) => inner.has_explicit(),
            Node::Pareto(children) | Node::Prior(children) => {
                children.iter().any(|c| c.node.has_explicit())
            }
            Node::Inter(l, r) | Node::Union(l, r) => l.has_explicit() || r.has_explicit(),
        }
    }

    fn has_params(&self) -> bool {
        match self {
            Node::Base { base, .. } => base.as_param().is_some(),
            Node::Antichain => false,
            Node::Dual(inner) => inner.has_params(),
            Node::Pareto(children) | Node::Prior(children) => {
                children.iter().any(|c| c.node.has_params())
            }
            Node::Rank { inputs, .. } => inputs.iter().any(|(_, b)| b.as_param().is_some()),
            Node::Inter(l, r) | Node::Union(l, r) => l.has_params() || r.has_params(),
        }
    }

    fn collect_slots(&self, out: &mut Vec<usize>) {
        match self {
            Node::Base { base, .. } => {
                if let Some(p) = base.as_param() {
                    p.spec().collect_slots(out);
                }
            }
            Node::Antichain => {}
            Node::Dual(inner) => inner.collect_slots(out),
            Node::Pareto(children) | Node::Prior(children) => {
                for c in children {
                    c.node.collect_slots(out);
                }
            }
            Node::Rank { inputs, .. } => {
                for (_, b) in inputs {
                    if let Some(p) = b.as_param() {
                        p.spec().collect_slots(out);
                    }
                }
            }
            Node::Inter(l, r) | Node::Union(l, r) => {
                l.collect_slots(out);
                r.collect_slots(out);
            }
        }
    }

    /// Slot patching: identical tree, identical `col`/`eq_cols` layout,
    /// only parameterized base handles replaced by their instantiations.
    fn bind(&self, values: &[Value]) -> Result<Node, CoreError> {
        let bind_ref = |base: &BaseRef| -> Result<BaseRef, CoreError> {
            match base.as_param() {
                Some(shape) => shape.instantiate(values),
                None => Ok(base.clone()),
            }
        };
        Ok(match self {
            Node::Base { col, base } => Node::Base {
                col: *col,
                base: bind_ref(base)?,
            },
            Node::Antichain => Node::Antichain,
            Node::Dual(inner) => Node::Dual(Box::new(inner.bind(values)?)),
            Node::Pareto(children) | Node::Prior(children) => {
                let bound: Vec<Child> = children
                    .iter()
                    .map(|c| {
                        Ok(Child {
                            node: c.node.bind(values)?,
                            eq_cols: c.eq_cols.clone(),
                        })
                    })
                    .collect::<Result<_, CoreError>>()?;
                if matches!(self, Node::Pareto(_)) {
                    Node::Pareto(bound)
                } else {
                    Node::Prior(bound)
                }
            }
            Node::Rank { combine, inputs } => Node::Rank {
                combine: combine.clone(),
                inputs: inputs
                    .iter()
                    .map(|(col, b)| Ok((*col, bind_ref(b)?)))
                    .collect::<Result<_, CoreError>>()?,
            },
            Node::Inter(l, r) => Node::Inter(Box::new(l.bind(values)?), Box::new(r.bind(values)?)),
            Node::Union(l, r) => Node::Union(Box::new(l.bind(values)?), Box::new(r.bind(values)?)),
        })
    }

    fn better(&self, x: &Tuple, y: &Tuple) -> bool {
        match self {
            Node::Base { col, base } => base.better(&x[*col], &y[*col]),
            Node::Antichain => false,
            Node::Dual(inner) => inner.better(y, x),
            // Def. 8 (n-ary form): y beats x iff on every component y is
            // better or equal, and on at least one it is strictly better.
            Node::Pareto(children) => {
                let mut any_strict = false;
                for c in children {
                    if c.node.better(x, y) {
                        any_strict = true;
                    } else if !x.eq_on(y, &c.eq_cols) {
                        return false;
                    }
                }
                any_strict
            }
            // Def. 9 (n-ary form): lexicographic — the first component
            // where the projections differ decides.
            Node::Prior(children) => {
                for c in children {
                    if c.node.better(x, y) {
                        return true;
                    }
                    if !x.eq_on(y, &c.eq_cols) {
                        return false;
                    }
                }
                false
            }
            // Def. 10: x < y iff F(f1(x1),…) < F(f1(y1),…).
            Node::Rank { combine, inputs } => {
                let fx = rank_value(combine, inputs, x);
                let fy = rank_value(combine, inputs, y);
                fx < fy
            }
            Node::Inter(l, r) => l.better(x, y) && r.better(x, y),
            Node::Union(l, r) => l.better(x, y) || r.better(x, y),
        }
    }

    fn utility(&self, t: &Tuple) -> Option<f64> {
        match self {
            Node::Base { col, base } => base.score(&t[*col]),
            Node::Rank { combine, inputs } => Some(rank_value(combine, inputs, t)),
            Node::Dual(inner) => inner.utility(t).map(|u| -u),
            // Sum of component utilities: strictly monotone w.r.t. the
            // Pareto order because each component's `better` implies a
            // strictly higher component score and component equality
            // implies equal scores.
            Node::Pareto(children) => {
                let mut sum = 0.0;
                for c in children {
                    sum += c.node.utility(t)?;
                }
                Some(sum)
            }
            _ => None,
        }
    }
}

fn rank_value(combine: &CombineFn, inputs: &[(usize, BaseRef)], t: &Tuple) -> f64 {
    let scores: Vec<f64> = inputs
        .iter()
        .map(|(col, base)| base.score(&t[*col]).unwrap_or(f64::NEG_INFINITY))
        .collect();
    combine.apply(&scores)
}

/// A score-materialized, columnar form of a compiled preference over one
/// concrete relation.
///
/// Per row, the matrix stores:
///
/// * one `f64` **dominance key** per score-representable sub-term (base
///   preferences with a [`crate::base::BasePreference::dominance_key`],
///   `rank(F)` terms), with the exact per-term guarantee
///   `better(x, y) ⟺ key(x) < key(y)`;
/// * one dense `u32` **equality id** per Pareto/prioritised operand,
///   encoding the operand's attribute projection (`xi = yi` of Def. 8/9)
///   via [`Relation::group_ids`].
///
/// `better(x, y)` then runs the Def. 8–12 recursion over row *indices*
/// touching only these vectors — branch-light numeric comparisons with no
/// `Value` dispatch, no hash-set membership tests, no distance
/// recomputation. Building is a single O(n · terms) pass, amortized over
/// the O(n²)-ish comparisons of BMO evaluation.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    rows: usize,
    /// Row-major keys: `keys[row * key_stride + slot]`.
    keys: Vec<f64>,
    key_stride: usize,
    /// Per key slot: the `(column, base preference)` whose
    /// `dominance_key` filled it, for slots that came from a base
    /// preference (`None` for `rank(F)` slots). Lets quality functions
    /// (LEVEL/DISTANCE of `BUT ONLY`) read the materialized keys back
    /// instead of re-walking values.
    key_bases: Vec<Option<(usize, BaseRef)>>,
    /// Row-major equality codes: `eqs[row * eq_stride + slot]`. A slot is
    /// either a lossless value fingerprint (numeric columns) or a dense
    /// dictionary id (strings, multi-attribute projections); both compare
    /// by `==`.
    eqs: Vec<u64>,
    eq_stride: usize,
    plan: ScorePlan,
}

/// The structural skeleton `better` interprets over the materialized
/// columns. Mirrors [`Node`] restricted to score-representable shapes.
#[derive(Debug, Clone)]
enum ScorePlan {
    /// `better ⟺ key[x] < key[y]`.
    Key(usize),
    /// Never better.
    Antichain,
    /// Argument swap.
    Dual(Box<ScorePlan>),
    /// Flat Pareto over key children — the skyline-critical fast path.
    ParetoKeys(Vec<(usize, usize)>),
    /// General Pareto: `(child, eq slot)` per operand.
    Pareto(Vec<(ScorePlan, usize)>),
    /// Prioritised accumulation: `(child, eq slot)` per operand.
    Prior(Vec<(ScorePlan, usize)>),
    /// EXPLICIT sub-term: per-row vertex ids in slot `ids`, dominance via
    /// the graph's reachability bitset. A genuine partial order — the one
    /// base shape with no `f64` embedding that still materializes.
    Explicit { ids: usize, reach: Reachability },
}

impl ScoreMatrix {
    fn build(node: &Node, r: &Relation) -> Option<ScoreMatrix> {
        let mut b = MatrixBuilder {
            r,
            keys: Vec::new(),
            key_bases: Vec::new(),
            eqs: Vec::new(),
            eq_cache: HashMap::new(),
        };
        let plan = b.plan(node)?;
        let rows = r.len();

        // Transpose the per-slot columns into row-major strips so one
        // row's keys are contiguous during pairwise comparison.
        let key_stride = b.keys.len();
        let mut keys = vec![0.0f64; rows * key_stride];
        for (s, col) in b.keys.iter().enumerate() {
            for (i, &k) in col.iter().enumerate() {
                keys[i * key_stride + s] = k;
            }
        }
        let eq_stride = b.eqs.len();
        let mut eqs = vec![0u64; rows * eq_stride];
        for (s, col) in b.eqs.iter().enumerate() {
            for (i, &e) in col.iter().enumerate() {
                eqs[i * eq_stride + s] = e;
            }
        }

        Some(ScoreMatrix {
            rows,
            keys,
            key_stride,
            key_bases: b.key_bases,
            eqs,
            eq_stride,
            plan,
        })
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the matrix over an empty relation?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of materialized key columns.
    pub fn key_slots(&self) -> usize {
        self.key_stride
    }

    /// Number of materialized equality-id columns.
    pub fn eq_slots(&self) -> usize {
        self.eq_stride
    }

    #[inline]
    fn key(&self, row: usize, slot: usize) -> f64 {
        self.keys[row * self.key_stride + slot]
    }

    /// The key slot filled by `base`'s `dominance_key` over column
    /// `col`, when this matrix materialized that base preference
    /// (identified like [`crate::base::base_eq`]: name + printed
    /// parameters).
    pub fn base_key_slot(&self, col: usize, base: &BaseRef) -> Option<usize> {
        self.key_bases.iter().position(|slot| {
            slot.as_ref()
                .is_some_and(|(c, b)| *c == col && base_eq(b, base))
        })
    }

    /// The materialized dominance key of `row` in `slot` (a
    /// [`ScoreMatrix::base_key_slot`] result). The inverse quality
    /// lookups [`crate::base::BasePreference::level_from_key`] /
    /// [`distance_from_key`](crate::base::BasePreference::distance_from_key)
    /// apply to exactly these values.
    pub fn key_at(&self, row: usize, slot: usize) -> f64 {
        self.key(row, slot)
    }

    #[inline]
    fn eq(&self, row: usize, slot: usize) -> u64 {
        self.eqs[row * self.eq_stride + slot]
    }

    /// The strict better-than test on row indices: is `y` better than
    /// `x`? Agrees exactly with [`CompiledPref::better`] on the rows of
    /// the relation this matrix was built from.
    #[inline]
    pub fn better(&self, x: usize, y: usize) -> bool {
        self.eval(&self.plan, x, y)
    }

    fn eval(&self, plan: &ScorePlan, x: usize, y: usize) -> bool {
        match plan {
            ScorePlan::Key(s) => self.key(x, *s) < self.key(y, *s),
            ScorePlan::Antichain => false,
            ScorePlan::Dual(inner) => self.eval(inner, y, x),
            // Def. 8 over keys: a key child is strictly better exactly on
            // `<`; on unequal projections with no strict win, y cannot
            // dominate. (Equal eq ids imply equal keys, so the equality
            // branch is only reachable with `key(x) == key(y)`.)
            ScorePlan::ParetoKeys(slots) => {
                let mut any_strict = false;
                for &(k, e) in slots {
                    if self.key(x, k) < self.key(y, k) {
                        any_strict = true;
                    } else if self.eq(x, e) != self.eq(y, e) {
                        return false;
                    }
                }
                any_strict
            }
            ScorePlan::Pareto(children) => {
                let mut any_strict = false;
                for (child, e) in children {
                    if self.eval(child, x, y) {
                        any_strict = true;
                    } else if self.eq(x, *e) != self.eq(y, *e) {
                        return false;
                    }
                }
                any_strict
            }
            // Def. 9: first operand whose projections differ decides.
            ScorePlan::Prior(children) => {
                for (child, e) in children {
                    if self.eval(child, x, y) {
                        return true;
                    }
                    if self.eq(x, *e) != self.eq(y, *e) {
                        return false;
                    }
                }
                false
            }
            ScorePlan::Explicit { ids, reach } => {
                reach.better_ids(self.eq(x, *ids) as usize, self.eq(y, *ids) as usize)
            }
        }
    }

    /// Does this matrix run any sub-term on the EXPLICIT reachability
    /// bitset backend (as opposed to pure `f64` dominance keys)?
    pub fn explicit_backend(&self) -> bool {
        fn walk(p: &ScorePlan) -> bool {
            match p {
                ScorePlan::Explicit { .. } => true,
                ScorePlan::Dual(inner) => walk(inner),
                ScorePlan::Pareto(children) | ScorePlan::Prior(children) => {
                    children.iter().any(|(c, _)| walk(c))
                }
                ScorePlan::Key(_) | ScorePlan::Antichain | ScorePlan::ParetoKeys(_) => false,
            }
        }
        walk(&self.plan)
    }
}

/// A pairwise dominance backend over row indices — the interface the
/// BMO inner loops (BNL windows, SFS filter passes, naive scans) are
/// generic over, implemented by the [`ScoreMatrix`] itself and by
/// [`MatrixWindow`] views onto one.
pub trait Dominance {
    /// Number of rows covered.
    fn len(&self) -> usize;

    /// Is `y` better than `x`?
    fn better(&self, x: usize, y: usize) -> bool;

    /// Is the backend over an empty relation?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Dominance for ScoreMatrix {
    fn len(&self) -> usize {
        ScoreMatrix::len(self)
    }

    fn better(&self, x: usize, y: usize) -> bool {
        ScoreMatrix::better(self, x, y)
    }
}

/// A view of a shared [`ScoreMatrix`], optionally *windowed* onto a row
/// subset by an index vector.
///
/// Every per-row quantity the matrix materializes — dominance keys,
/// equality ids, EXPLICIT vertex ids — is a pure function of that row's
/// values (equality ids compare only for equality, which restriction
/// preserves), so the matrix built for a whole relation answers
/// dominance questions for **any** subset of its rows: evaluating row
/// `i` of a subset is evaluating base row `ids[i]` of the full matrix.
/// A windowed view is therefore semantically identical to the matrix a
/// fresh materialization of the subset would produce, at the cost of
/// one index indirection per row access — which is how a *never-seen*
/// selection over an already-materialized base runs warm.
#[derive(Debug, Clone)]
pub struct MatrixWindow {
    matrix: Arc<ScoreMatrix>,
    /// `None` = the identity view (the full matrix).
    ids: Option<Arc<[u32]>>,
}

impl MatrixWindow {
    /// The identity view over a whole matrix.
    pub fn full(matrix: Arc<ScoreMatrix>) -> Self {
        MatrixWindow { matrix, ids: None }
    }

    /// Window `matrix` onto the subset selected by `ids` (row `i` of the
    /// window is base row `ids[i]`).
    ///
    /// Every id must be `< matrix.len()`; out-of-range ids panic on
    /// first access, exactly like out-of-range row indices on the
    /// matrix itself.
    pub fn windowed(matrix: Arc<ScoreMatrix>, ids: Arc<[u32]>) -> Self {
        MatrixWindow {
            matrix,
            ids: Some(ids),
        }
    }

    /// Is this a genuine window (index indirection), as opposed to the
    /// identity view?
    pub fn is_windowed(&self) -> bool {
        self.ids.is_some()
    }

    /// The shared underlying matrix.
    pub fn matrix(&self) -> &Arc<ScoreMatrix> {
        &self.matrix
    }

    /// The base-matrix row backing window row `row`.
    #[inline]
    fn base_row(&self, row: usize) -> usize {
        match &self.ids {
            Some(ids) => ids[row] as usize,
            None => row,
        }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match &self.ids {
            Some(ids) => ids.len(),
            None => self.matrix.len(),
        }
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The strict better-than test on *view* row indices.
    #[inline]
    pub fn better(&self, x: usize, y: usize) -> bool {
        self.matrix.better(self.base_row(x), self.base_row(y))
    }

    /// [`ScoreMatrix::base_key_slot`], unchanged by windowing (slots are
    /// per-term, not per-row).
    pub fn base_key_slot(&self, col: usize, base: &BaseRef) -> Option<usize> {
        self.matrix.base_key_slot(col, base)
    }

    /// The materialized dominance key of *view* row `row` in `slot`.
    pub fn key_at(&self, row: usize, slot: usize) -> f64 {
        self.matrix.key_at(self.base_row(row), slot)
    }

    /// Does the underlying matrix run EXPLICIT sub-terms on the
    /// reachability-bitset backend?
    pub fn explicit_backend(&self) -> bool {
        self.matrix.explicit_backend()
    }
}

impl Dominance for MatrixWindow {
    fn len(&self) -> usize {
        MatrixWindow::len(self)
    }

    fn better(&self, x: usize, y: usize) -> bool {
        MatrixWindow::better(self, x, y)
    }
}

/// Mirror of [`MatrixBuilder::plan`]'s success condition, minus every
/// allocation: keys must embed (non-`None`, non-NaN) for each base and
/// rank term, EXPLICIT graphs always materialize (vertex-id encoding),
/// and equality encodings always exist.
fn supports(node: &Node, r: &Relation) -> bool {
    match node {
        Node::Base { col, base } => {
            base.as_explicit().is_some()
                || r.column(*col)
                    .iter()
                    .all(|v| base.dominance_key(v).is_some_and(|k| !k.is_nan()))
        }
        Node::Antichain => true,
        Node::Dual(inner) => supports(inner, r),
        Node::Rank { combine, inputs } => {
            r.iter().all(|t| !rank_value(combine, inputs, t).is_nan())
        }
        Node::Pareto(children) | Node::Prior(children) => {
            children.iter().all(|c| supports(&c.node, r))
        }
        Node::Inter(..) | Node::Union(..) => false,
    }
}

struct MatrixBuilder<'a> {
    r: &'a Relation,
    keys: Vec<Vec<f64>>,
    /// Per key slot: origin `(col, base)` for base-preference slots.
    key_bases: Vec<Option<(usize, BaseRef)>>,
    eqs: Vec<Vec<u64>>,
    /// Dedup equality slots by their column signature — Pareto and Prior
    /// operands over the same attribute set share one encoding.
    eq_cache: HashMap<Vec<usize>, usize>,
}

impl MatrixBuilder<'_> {
    fn plan(&mut self, node: &Node) -> Option<ScorePlan> {
        match node {
            Node::Base { col, base } => {
                if let Some(e) = base.as_explicit() {
                    // EXPLICIT has no f64 embedding (genuine partial
                    // order), but values resolve to graph-vertex ids once
                    // and dominance becomes a reachability-bitset probe.
                    let reach = e.reachability();
                    let outside = reach.outside_id() as u64;
                    let ids = self
                        .r
                        .column(*col)
                        .iter()
                        .map(|v| e.vertex_index(v).map_or(outside, |i| i as u64))
                        .collect();
                    return Some(ScorePlan::Explicit {
                        ids: self.push_raw_eq(ids),
                        reach,
                    });
                }
                let keys = self
                    .r
                    .column(*col)
                    // NaN keys would order inconsistently under `<`;
                    // treat them as non-embeddable.
                    .map_f64(|v| base.dominance_key(v).filter(|k| !k.is_nan()))?;
                Some(ScorePlan::Key(
                    self.push_key(keys, Some((*col, base.clone()))),
                ))
            }
            Node::Antichain => Some(ScorePlan::Antichain),
            Node::Dual(inner) => Some(ScorePlan::Dual(Box::new(self.plan(inner)?))),
            Node::Rank { combine, inputs } => {
                let keys: Option<Vec<f64>> = self
                    .r
                    .iter()
                    .map(|t| Some(rank_value(combine, inputs, t)).filter(|k| !k.is_nan()))
                    .collect();
                Some(ScorePlan::Key(self.push_key(keys?, None)))
            }
            Node::Pareto(children) => {
                let built = self.children(children)?;
                // Flatten all-key Pareto terms into the tight loop.
                if built.iter().all(|(c, _)| matches!(c, ScorePlan::Key(_))) {
                    Some(ScorePlan::ParetoKeys(
                        built
                            .into_iter()
                            .map(|(c, e)| match c {
                                ScorePlan::Key(k) => (k, e),
                                _ => unreachable!("all children checked to be keys"),
                            })
                            .collect(),
                    ))
                } else {
                    Some(ScorePlan::Pareto(built))
                }
            }
            Node::Prior(children) => Some(ScorePlan::Prior(self.children(children)?)),
            // Intersection / disjoint union compare two full sub-orders
            // per pair; no per-row embedding exists in general.
            Node::Inter(..) | Node::Union(..) => None,
        }
    }

    fn children(&mut self, children: &[Child]) -> Option<Vec<(ScorePlan, usize)>> {
        children
            .iter()
            .map(|c| {
                let plan = self.plan(&c.node)?;
                let eq = self.eq_slot(&c.eq_cols);
                Some((plan, eq))
            })
            .collect()
    }

    fn push_key(&mut self, keys: Vec<f64>, origin: Option<(usize, BaseRef)>) -> usize {
        self.keys.push(keys);
        self.key_bases.push(origin);
        self.keys.len() - 1
    }

    /// Push a code column that is *not* an equality encoding (EXPLICIT
    /// vertex ids collapse all outside values onto one id), bypassing the
    /// eq-slot dedup cache.
    fn push_raw_eq(&mut self, codes: Vec<u64>) -> usize {
        self.eqs.push(codes);
        self.eqs.len() - 1
    }

    fn eq_slot(&mut self, cols: &[usize]) -> usize {
        if let Some(&slot) = self.eq_cache.get(cols) {
            return slot;
        }
        // Prefer the hash-free fingerprint encoding for single numeric
        // columns; dictionary-encode strings and wider projections.
        let codes = match cols {
            [col] => self.r.column(*col).fingerprints(),
            _ => None,
        }
        .unwrap_or_else(|| {
            let (ids, _) = self.r.group_ids(cols);
            ids.into_iter().map(u64::from).collect()
        });
        self.eqs.push(codes);
        let slot = self.eqs.len() - 1;
        self.eq_cache.insert(cols.to_vec(), slot);
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo;
    use crate::term::{around, highest, lowest, neg, pos, Pref};
    use pref_relation::{rel, Relation};

    fn compile(p: &Pref, r: &Relation) -> CompiledPref {
        CompiledPref::compile(p, r.schema()).unwrap()
    }

    /// Example 2's relation R(A1, A2, A3).
    fn example2_rel() -> Relation {
        rel! {
            ("A1": Int, "A2": Int, "A3": Int);
            (-5, 3, 4),
            (-5, 4, 4),
            (5, 1, 8),
            (5, 6, 6),
            (-6, 0, 6),
            (-6, 0, 4),
            (6, 2, 7),
        }
    }

    fn example2_pref() -> Pref {
        around("A1", 0).pareto(lowest("A2")).pareto(highest("A3"))
    }

    #[test]
    fn compile_rejects_unknown_attrs() {
        let r = example2_rel();
        let err = CompiledPref::compile(&lowest("missing"), r.schema()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownAttr(_)));
        let err =
            CompiledPref::compile(&crate::term::antichain(["missing"]), r.schema()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownAttr(_)));
    }

    #[test]
    fn example2_pareto_better_than_graph_relations() {
        let r = example2_rel();
        let c = compile(&example2_pref(), &r);
        let rows = r.to_owned_rows();
        // From the drawn graph: val2 < val1, val4 < val3, val7 < val3,
        // val6 < val5; the level-1 values are pairwise unranked.
        assert!(c.better(&rows[1], &rows[0])); // val2 < val1
        assert!(c.better(&rows[3], &rows[2])); // val4 < val3
        assert!(c.better(&rows[6], &rows[2])); // val7 < val3
        assert!(c.better(&rows[5], &rows[4])); // val6 < val5
        for &(a, b) in &[(0usize, 2usize), (0, 4), (2, 4)] {
            assert!(
                !c.better(&rows[a], &rows[b]),
                "val{} vs val{}",
                a + 1,
                b + 1
            );
            assert!(!c.better(&rows[b], &rows[a]));
        }
    }

    #[test]
    fn pareto_requires_no_worse_component() {
        // Def. 8: "it is not tolerable that v is worse than w in any
        // component value."
        let r = rel! {
            ("A1": Int, "A2": Int);
            (0, 0),   // best on A1, worst on A2
            (9, 9),   // worst on A1, best on A2
        };
        let p = around("A1", 0).pareto(highest("A2"));
        let c = compile(&p, &r);
        assert!(!c.better(r.row(0), r.row(1)));
        assert!(!c.better(r.row(1), r.row(0)));
    }

    #[test]
    fn example3_shared_attribute_pareto() {
        // P7 = POS(Color,{green,yellow}) ⊗ NEG(Color,{red,green,blue,purple})
        let r = rel! {
            ("color": Str);
            ("red",), ("green",), ("yellow",), ("blue",), ("black",), ("purple",),
        };
        let p = pos("color", ["green", "yellow"])
            .pareto(neg("color", ["red", "green", "blue", "purple"]));
        let c = compile(&p, &r);
        let row = |i: usize| r.row(i);
        // On a shared attribute, Pareto needs BOTH operands to agree
        // (Prop. 6: ⊗ ≡ ♦ there). Only yellow wins both views, so only
        // yellow dominates the NEG values; green and black are maximal
        // but dominate nothing — the "non-discriminating compromise".
        for &loser in &[0usize, 3, 5] {
            assert!(c.better(row(loser), row(2)), "{loser} < yellow");
            assert!(!c.better(row(2), row(loser)));
            // green (P5's view) and black (P6's view) do not dominate.
            assert!(!c.better(row(loser), row(1)));
            assert!(!c.better(row(loser), row(4)));
        }
        // Paper figure: Level 1 = {yellow, green, black},
        //               Level 2 = {red, blue, purple}.
        let g = crate::graph::BetterGraph::from_relation(&c, &r).unwrap();
        assert_eq!(g.maximal(), vec![1, 2, 4]);
        assert_eq!(g.level_groups(), vec![vec![1, 2, 4], vec![0, 3, 5]]);
    }

    #[test]
    fn prior_is_lexicographic() {
        let r = rel! {
            ("A1": Int, "A2": Int);
            (1, 9),
            (1, 2),
            (5, 0),
        };
        // LOWEST(A1) & LOWEST(A2)
        let p = lowest("A1").prior(lowest("A2"));
        let c = compile(&p, &r);
        let rows = r.to_owned_rows();
        assert!(c.better(&rows[0], &rows[1])); // tie on A1, A2 decides
        assert!(c.better(&rows[2], &rows[0])); // A1 decides
        assert!(c.better(&rows[2], &rows[1]));
        assert!(!c.better(&rows[1], &rows[2]));
    }

    #[test]
    fn antichain_prior_is_grouping() {
        // A↔ & P ranks only within equal A-values (the Def. 16 derivation).
        let r = rel! {
            ("make": Str, "price": Int);
            ("audi", 10),
            ("audi", 20),
            ("bmw", 5),
        };
        let p = crate::term::antichain(["make"]).prior(lowest("price"));
        let c = compile(&p, &r);
        let rows = r.to_owned_rows();
        assert!(c.better(&rows[1], &rows[0])); // same make, cheaper
        assert!(!c.better(&rows[0], &rows[2])); // different make: unranked
        assert!(!c.better(&rows[2], &rows[0]));
    }

    #[test]
    fn rank_example5() {
        // Example 5: f1 = distance(x,0), f2 = distance(x,−2), F = x1 + 2·x2.
        let r = rel! {
            ("A1": Int, "A2": Int);
            (-5, 3),
            (-5, 4),
            (5, 1),
            (5, 6),
            (-6, 0),
            (-6, 0),
        };
        let f1 = crate::term::score("A1", "dist0", |v| v.ordinal().map(|o| o.abs()));
        let f2 = crate::term::score("A2", "dist-2", |v| v.ordinal().map(|o| (o + 2.0).abs()));
        let p = Pref::rank(CombineFn::weighted_sum(vec![1.0, 2.0]), vec![f1, f2]).unwrap();
        let c = compile(&p, &r);
        // F-values: 15, 17, 11, 21, 10, 10 → chain val4→val2→val1→val3→{val5,val6}
        let rows = r.to_owned_rows();
        let f = |i: usize| {
            // recover F via utility
            c.utility(&rows[i]).unwrap()
        };
        assert_eq!(f(0), 15.0);
        assert_eq!(f(1), 17.0);
        assert_eq!(f(2), 11.0);
        assert_eq!(f(3), 21.0);
        assert_eq!(f(4), 10.0);
        assert!(c.better(&rows[1], &rows[3])); // val2 < val4
        assert!(c.better(&rows[0], &rows[1])); // val1 < val2
        assert!(c.better(&rows[2], &rows[0])); // val3 < val1
        assert!(c.better(&rows[4], &rows[2])); // val5 < val3
                                               // val5 and val6 unranked (equal F)
        assert!(!c.better(&rows[4], &rows[5]));
        assert!(!c.better(&rows[5], &rows[4]));
    }

    #[test]
    fn dual_flips_everything() {
        let r = example2_rel();
        let p = example2_pref();
        let c = compile(&p, &r);
        let d = compile(&p.clone().dual(), &r);
        for x in r.iter() {
            for y in r.iter() {
                assert_eq!(c.better(x, y), d.better(y, x));
            }
        }
    }

    #[test]
    fn compiled_orders_are_spos_on_sample() {
        let r = example2_rel();
        for p in [
            example2_pref(),
            around("A1", 0).prior(lowest("A2")),
            example2_pref().dual(),
            lowest("A1").intersect(highest("A1")).unwrap(),
        ] {
            let c = compile(&p, &r);
            check_spo(r.len(), |x, y| c.better(r.row(x), r.row(y)))
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn score_vector_for_skyline_shape() {
        let r = rel! { ("a": Int, "b": Int); (1, 2) };
        let sky = lowest("a").pareto(highest("b"));
        let c = compile(&sky, &r);
        assert_eq!(c.score_vector(r.row(0)), Some(vec![-1.0, 2.0]));
        // AROUND is not score-injective → not skyline-shaped
        let not_sky = around("a", 0).pareto(highest("b"));
        let c2 = compile(&not_sky, &r);
        assert_eq!(c2.score_vector(r.row(0)), None);
    }

    #[test]
    fn score_matrix_agrees_with_generic_better() {
        let r = example2_rel();
        for p in [
            example2_pref(),
            around("A1", 0).prior(lowest("A2")),
            example2_pref().dual(),
            lowest("A1").prior(crate::term::antichain(["A2"]).prior(highest("A3"))),
            Pref::rank(CombineFn::sum(), vec![lowest("A1"), highest("A2")]).unwrap(),
        ] {
            let c = compile(&p, &r);
            let m = c
                .score_matrix(&r)
                .unwrap_or_else(|| panic!("{p} should materialize"));
            assert_eq!(m.len(), r.len());
            for x in 0..r.len() {
                for y in 0..r.len() {
                    assert_eq!(
                        m.better(x, y),
                        c.better(r.row(x), r.row(y)),
                        "matrix diverged for {p} on rows {x}, {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn score_matrix_handles_shared_attribute_pareto() {
        // Example 3's P7: both operands read the same column, so the
        // equality slots must encode the same projection once.
        let r = rel! {
            ("color": Str);
            ("red",), ("green",), ("yellow",), ("blue",), ("black",), ("purple",),
        };
        let p = pos("color", ["green", "yellow"])
            .pareto(neg("color", ["red", "green", "blue", "purple"]));
        let c = compile(&p, &r);
        let m = c.score_matrix(&r).expect("level-based bases materialize");
        assert_eq!(m.eq_slots(), 1, "shared projection should be deduplicated");
        for x in 0..r.len() {
            for y in 0..r.len() {
                assert_eq!(m.better(x, y), c.better(r.row(x), r.row(y)));
            }
        }
    }

    #[test]
    fn score_matrix_flattens_skyline_shapes() {
        let r = example2_rel();
        let c = compile(&lowest("A1").pareto(highest("A2")), &r);
        let m = c.score_matrix(&r).unwrap();
        assert_eq!(m.key_slots(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn score_matrix_unavailable_for_non_embeddable_terms() {
        let r = rel! { ("color": Str); ("red",), ("green",) };
        // Chains over string columns compare lexically, off the f64 axis.
        let p = lowest("color");
        assert!(compile(&p, &r).score_matrix(&r).is_none());
        // Intersection aggregation is not materialized.
        let r2 = example2_rel();
        let p = lowest("A1").intersect(highest("A1")).unwrap();
        assert!(compile(&p, &r2).score_matrix(&r2).is_none());
    }

    #[test]
    fn explicit_materializes_via_reachability_bitsets() {
        // Example 1's EXPLICIT graph over a column with in-graph, outside
        // and duplicate values: the matrix backend must agree pointwise
        // with the term walk and report itself as the EXPLICIT backend.
        let r = rel! {
            ("color": Str);
            ("white",), ("red",), ("yellow",), ("green",), ("brown",),
            ("black",), ("yellow",),
        };
        let e = crate::term::explicit(
            "color",
            [("green", "yellow"), ("green", "red"), ("yellow", "white")],
        )
        .unwrap();
        for p in [
            e.clone(),
            e.clone().dual(),
            e.clone().pareto(lowest("color").dual().dual()).dual(),
            e.clone().prior(crate::term::antichain(["color"])),
        ] {
            let c = compile(&p, &r);
            // The pareto case mixes EXPLICIT with a non-embeddable chain
            // (string LOWEST): the whole term must *not* materialize.
            match c.score_matrix(&r) {
                Some(m) => {
                    assert!(c.supports_matrix(&r));
                    assert!(m.explicit_backend(), "{p} should report the backend");
                    for x in 0..r.len() {
                        for y in 0..r.len() {
                            assert_eq!(
                                m.better(x, y),
                                c.better(r.row(x), r.row(y)),
                                "bitset backend diverged for {p} on rows {x}, {y}"
                            );
                        }
                    }
                }
                None => assert!(!c.supports_matrix(&r), "probe must mirror build for {p}"),
            }
        }
        // Pure-key matrices do not claim the EXPLICIT backend.
        let r2 = example2_rel();
        let m = compile(&lowest("A1"), &r2).score_matrix(&r2).unwrap();
        assert!(!m.explicit_backend());
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let r = example2_rel();
        let fp = |p: &Pref| compile(p, &r).fingerprint();

        // Recompilation and syntactic equality agree.
        assert_eq!(fp(&example2_pref()), fp(&example2_pref()));
        assert_eq!(
            fp(&lowest("A1").pareto(highest("A2"))),
            fp(&lowest("A1").pareto(highest("A2")))
        );

        // Structure, parameters, attributes, and operator all matter.
        let distinct = [
            lowest("A1"),
            lowest("A2"),
            highest("A1"),
            around("A1", 0),
            around("A1", 1),
            lowest("A1").dual(),
            lowest("A1").pareto(highest("A2")),
            highest("A2").pareto(lowest("A1")),
            lowest("A1").prior(highest("A2")),
            lowest("A1").intersect(highest("A1")).unwrap(),
            crate::term::antichain(["A1"]).prior(lowest("A2")),
            Pref::rank(CombineFn::sum(), vec![lowest("A1"), highest("A2")]).unwrap(),
            Pref::rank(CombineFn::min(), vec![lowest("A1"), highest("A2")]).unwrap(),
        ];
        let fps: Vec<u64> = distinct.iter().map(fp).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(
                    fps[i], fps[j],
                    "fingerprint collision between {} and {}",
                    distinct[i], distinct[j]
                );
            }
        }
    }

    #[test]
    fn score_matrix_on_empty_relation() {
        let r = rel! { ("a": Int); };
        let m = compile(&lowest("a"), &r).score_matrix(&r).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn pareto_utility_is_monotone() {
        let r = example2_rel();
        let p = example2_pref();
        let c = compile(&p, &r);
        for x in r.iter() {
            for y in r.iter() {
                if c.better(x, y) {
                    assert!(c.utility(x).unwrap() < c.utility(y).unwrap());
                }
            }
        }
    }
}
