//! Compilation of preference terms against a schema, and the strict
//! partial order semantics of the complex constructors (Def. 8–12).
//!
//! Terms are *logical*; a [`CompiledPref`] is the *physical* form with all
//! attribute names resolved to column indices once, so the O(n²)-ish inner
//! loops of BMO evaluation never touch a hash map.
//!
//! The component equality `xi = yi` used by Pareto and prioritised
//! accumulation is equality of the sub-preference's attribute projection
//! ([`pref_relation::Tuple::eq_on`]). This single definition covers both
//! Example 2 (disjoint attribute sets) and Example 3 (shared attribute
//! sets) of the paper.

use std::collections::HashMap;
use std::sync::Arc;

use pref_relation::{Relation, Schema, Tuple, Value};

use crate::base::{base_eq, BaseRef, Reachability};
use crate::error::CoreError;
use crate::term::{CombineFn, Pref};

/// A preference term compiled against a schema.
#[derive(Debug, Clone)]
pub struct CompiledPref {
    node: Node,
}

#[derive(Debug, Clone)]
enum Node {
    Base {
        col: usize,
        base: BaseRef,
    },
    Antichain,
    Dual(Box<Node>),
    Pareto(Vec<Child>),
    Prior(Vec<Child>),
    Rank {
        combine: CombineFn,
        inputs: Vec<(usize, BaseRef)>,
    },
    Inter(Box<Node>, Box<Node>),
    Union(Box<Node>, Box<Node>),
}

/// A Pareto/Prior operand together with the columns its attribute
/// projection spans (for the `xi = yi` test).
#[derive(Debug, Clone)]
struct Child {
    node: Node,
    eq_cols: Vec<usize>,
}

impl CompiledPref {
    /// Resolve every attribute of `pref` against `schema`.
    pub fn compile(pref: &Pref, schema: &Schema) -> Result<CompiledPref, CoreError> {
        Ok(CompiledPref {
            node: compile_node(pref, schema)?,
        })
    }

    /// The strict better-than test: `x <P y` — is `y` better than `x`?
    pub fn better(&self, x: &Tuple, y: &Tuple) -> bool {
        self.node.better(x, y)
    }

    /// A utility compatible with the order, when one exists:
    /// `x <P y ⟹ utility(x) < utility(y)`. Available for SCORE-family
    /// bases, `rank(F)` with a monotone `F` is the caller's obligation,
    /// and Pareto combinations of scored operands (sum of scores).
    ///
    /// Used by sort-based evaluation (SFS presorting) and top-k.
    pub fn utility(&self, t: &Tuple) -> Option<f64> {
        self.node.utility(t)
    }

    /// Per-dimension score vector for Pareto-of-chains terms — the input
    /// format of the divide & conquer skyline algorithms (\[KLP75\]/\[BKS01\],
    /// which require every dimension to be a LOWEST/HIGHEST-style chain).
    /// `None` when the term is not of that restricted shape.
    pub fn score_vector(&self, t: &Tuple) -> Option<Vec<f64>> {
        let dims = self.chain_dims()?;
        Some(
            dims.iter()
                .map(|(col, base)| base.score(&t[*col]).unwrap_or(f64::NEG_INFINITY))
                .collect(),
        )
    }

    /// Materialize a [`ScoreMatrix`] for this preference over `r`: a
    /// one-pass, columnar encoding of everything `better` needs, so the
    /// O(n²)-ish dominance loops of BMO evaluation become plain `f64`/`u32`
    /// comparisons instead of term-tree walks over [`Value`]s.
    ///
    /// EXPLICIT base preferences materialize too, via per-row vertex ids
    /// plus the graph's reachability bitset ([`Reachability`]); the
    /// matrix reports that through [`ScoreMatrix::explicit_backend`].
    ///
    /// Returns `None` when the term (or a value in the relation) is not
    /// representable — intersection and disjoint-union aggregation,
    /// chains over non-numeric columns — in which case callers fall back
    /// to the generic [`CompiledPref::better`] path.
    ///
    /// `r` must have the schema this preference was compiled against.
    ///
    /// [`Value`]: pref_relation::Value
    pub fn score_matrix(&self, r: &Relation) -> Option<ScoreMatrix> {
        self.score_matrix_with(r, 1, 0)
    }

    /// [`CompiledPref::score_matrix`] with the key-lane materialization
    /// fanned out over `threads` scoped worker threads (shard-granular;
    /// `0` and `1` both mean sequential — callers resolve "auto" to a
    /// concrete count, e.g. via `std::thread::available_parallelism`).
    pub fn score_matrix_parallel(&self, r: &Relation, threads: usize) -> Option<ScoreMatrix> {
        self.score_matrix_with(r, threads, 0)
    }

    /// Fully parameterized matrix build: `threads` workers over shards of
    /// `shard_rows` rows (rounded up to a power of two; `0` = the default
    /// of [`ScoreMatrix::DEFAULT_SHARD_ROWS`]). Small shard sizes exist
    /// for tests that must exercise shard boundaries on tiny relations.
    pub fn score_matrix_with(
        &self,
        r: &Relation,
        threads: usize,
        shard_rows: usize,
    ) -> Option<ScoreMatrix> {
        ScoreMatrix::build(&self.node, r, threads, shard_shift(shard_rows), None)
    }

    /// Incremental rebuild against `prev`, a matrix this same preference
    /// materialized for an earlier content state of `r`: rows
    /// `0..prefix_len` of `r` are identical to `prev`'s rows except those
    /// listed in `dirty`, and rows `prefix_len..` are appended. Key lanes
    /// of *clean* shards — fully inside the prefix, no dirty row — are
    /// reused by `Arc` clone (keys are pure per-row functions), so only
    /// dirty and tail shards pay the per-value `dominance_key` dispatch.
    /// Equality lanes with row-pure encodings (value fingerprints,
    /// EXPLICIT vertex ids) are patched the same way — prefix copied,
    /// dirty and appended rows re-encoded; only dictionary lanes
    /// (strings, multi-attribute projections) pay a full re-encode,
    /// because their dense first-seen ids are a whole-column property an
    /// in-place update can perturb.
    ///
    /// Reused shards keep their [`ScoreMatrix::shard_generations`] stamp;
    /// rebuilt shards are stamped with `r.generation()` — which is what
    /// makes per-shard invalidation observable.
    ///
    /// Returns `None` when the term does not materialize on `r` or the
    /// prefix claim is inconsistent. A `prev` with a mismatched layout
    /// (different shard size or key-slot count) is not an error — it
    /// simply reuses nothing and degenerates to a full build.
    pub fn score_matrix_incremental(
        &self,
        r: &Relation,
        prev: &ScoreMatrix,
        prefix_len: usize,
        dirty: &[u32],
        threads: usize,
    ) -> Option<ScoreMatrix> {
        if prefix_len > prev.len() || prefix_len > r.len() {
            return None;
        }
        ScoreMatrix::build(
            &self.node,
            r,
            threads,
            prev.shard_shift,
            Some(Reuse {
                prev,
                prefix_len,
                dirty,
            }),
        )
    }

    /// Would [`CompiledPref::score_matrix`] succeed on `r`? An
    /// allocation-free probe (per-column scan with early exit) for
    /// planners that must report the backend without paying for the
    /// materialization — `EXPLAIN` latency stays O(n) scans, not
    /// matrix assembly.
    pub fn supports_matrix(&self, r: &Relation) -> bool {
        supports(&self.node, r)
    }

    /// A stable *structural fingerprint* of the compiled term: equal for
    /// two compilations of syntactically equal terms against the same
    /// schema (same resolved column indices, same base constructors with
    /// the same printed parameters), and different with overwhelming
    /// probability otherwise. The fingerprint is a pure function of the
    /// compiled structure — no addresses, no hash-map iteration order —
    /// so it is reproducible across processes and suitable as one half of
    /// a `(relation generation, term fingerprint)` cache key.
    ///
    /// Base preferences are identified by constructor name plus printed
    /// parameters, exactly like [`crate::base::base_eq`]; custom `SCORE`
    /// functions must carry distinct names to be distinguishable.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        self.node.fingerprint_into(&mut h);
        h.finish()
    }

    /// Does the term contain EXPLICIT base preferences (the sub-terms the
    /// score matrix materializes via reachability bitsets)? Structural
    /// probe for `EXPLAIN`-style backend reporting.
    pub fn has_explicit(&self) -> bool {
        self.node.has_explicit()
    }

    /// Does the compiled term contain parameterized shapes
    /// ([`crate::param::ParamBase`]) that must be [bound](CompiledPref::bind)
    /// before evaluation? While unbound, [`CompiledPref::fingerprint`] is
    /// the **shape fingerprint**: stable across bindings, with `$n` in
    /// the slot positions.
    pub fn has_params(&self) -> bool {
        self.node.has_params()
    }

    /// The `$n` slot indices the compiled shapes read (sorted,
    /// deduplicated; empty for concrete terms).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.node.collect_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Patch every parameter slot with its bound value
    /// (`values[0] = $1`), producing a fully concrete compiled term.
    ///
    /// This is the compiled half of prepared-statement binding: the node
    /// tree, every resolved column index and every equality-projection
    /// layout (`eq_cols`) are preserved verbatim — only the slot-bearing
    /// base handles are swapped for their instantiations. No AST walk,
    /// no schema lookup, no re-derivation of dominance-key layouts. The
    /// bound term's [`fingerprint`](CompiledPref::fingerprint) equals
    /// the fingerprint a fresh compile of the bound term would produce,
    /// so matrices cached for either route are shared.
    pub fn bind(&self, values: &[Value]) -> Result<CompiledPref, CoreError> {
        Ok(CompiledPref {
            node: self.node.bind(values)?,
        })
    }

    /// The chain dimensions of a `SKYLINE OF`-shaped term (§6.1): a Pareto
    /// accumulation in which every operand is a chain with an
    /// order-injective score (LOWEST/HIGHEST).
    pub fn chain_dims(&self) -> Option<Vec<(usize, BaseRef)>> {
        match &self.node {
            Node::Pareto(children) => {
                let mut dims = Vec::with_capacity(children.len());
                for c in children {
                    match &c.node {
                        Node::Base { col, base } if base.is_chain() && base.is_numerical() => {
                            dims.push((*col, base.clone()));
                        }
                        _ => return None,
                    }
                }
                Some(dims)
            }
            Node::Base { col, base } if base.is_chain() && base.is_numerical() => {
                Some(vec![(*col, base.clone())])
            }
            _ => None,
        }
    }
}

fn compile_node(pref: &Pref, schema: &Schema) -> Result<Node, CoreError> {
    Ok(match pref {
        Pref::Base(b) => Node::Base {
            col: schema
                .index_of(&b.attr)
                .ok_or_else(|| CoreError::UnknownAttr(b.attr.clone()))?,
            base: b.base.clone(),
        },
        Pref::Antichain(attrs) => {
            // Resolve eagerly so unknown attributes fail at compile time
            // even though the anti-chain itself never compares columns.
            for a in attrs.iter() {
                schema
                    .index_of(a)
                    .ok_or_else(|| CoreError::UnknownAttr(a.clone()))?;
            }
            Node::Antichain
        }
        Pref::Dual(p) => Node::Dual(Box::new(compile_node(p, schema)?)),
        Pref::Pareto(ps) => Node::Pareto(compile_children(ps, schema)?),
        Pref::Prior(ps) => Node::Prior(compile_children(ps, schema)?),
        Pref::Rank(combine, bases) => {
            let mut inputs = Vec::with_capacity(bases.len());
            for b in bases {
                let col = schema
                    .index_of(&b.attr)
                    .ok_or_else(|| CoreError::UnknownAttr(b.attr.clone()))?;
                inputs.push((col, b.base.clone()));
            }
            Node::Rank {
                combine: combine.clone(),
                inputs,
            }
        }
        Pref::Inter(l, r) => Node::Inter(
            Box::new(compile_node(l, schema)?),
            Box::new(compile_node(r, schema)?),
        ),
        Pref::Union(l, r) => Node::Union(
            Box::new(compile_node(l, schema)?),
            Box::new(compile_node(r, schema)?),
        ),
    })
}

fn compile_children(ps: &[Pref], schema: &Schema) -> Result<Vec<Child>, CoreError> {
    ps.iter()
        .map(|p| {
            let node = compile_node(p, schema)?;
            let attrs = p.attributes();
            let mut eq_cols = Vec::with_capacity(attrs.len());
            for a in attrs.iter() {
                eq_cols.push(
                    schema
                        .index_of(a)
                        .ok_or_else(|| CoreError::UnknownAttr(a.clone()))?,
                );
            }
            Ok(Child { node, eq_cols })
        })
        .collect()
}

/// FNV-1a accumulator for structural fingerprints. Deliberately *not*
/// `std::hash::Hasher`-based: the std trait gives no stability guarantee
/// across releases, while cache keys derived here must be reproducible.
struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Structural tag separating node kinds and field boundaries.
    fn tag(&mut self, t: u8) {
        self.byte(t);
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Length-prefixed so `("ab", "c")` and `("a", "bc")` differ.
    fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl Node {
    fn fingerprint_into(&self, h: &mut Fingerprint) {
        match self {
            Node::Base { col, base } => {
                h.tag(1);
                h.word(*col as u64);
                h.str(base.name());
                h.str(&base.params());
            }
            Node::Antichain => h.tag(2),
            Node::Dual(inner) => {
                h.tag(3);
                inner.fingerprint_into(h);
            }
            Node::Pareto(children) | Node::Prior(children) => {
                h.tag(if matches!(self, Node::Pareto(_)) {
                    4
                } else {
                    5
                });
                h.word(children.len() as u64);
                for c in children {
                    c.node.fingerprint_into(h);
                    h.word(c.eq_cols.len() as u64);
                    for col in &c.eq_cols {
                        h.word(*col as u64);
                    }
                }
            }
            Node::Rank { combine, inputs } => {
                h.tag(6);
                h.str(combine.name());
                h.word(inputs.len() as u64);
                for (col, base) in inputs {
                    h.word(*col as u64);
                    h.str(base.name());
                    h.str(&base.params());
                }
            }
            Node::Inter(l, r) | Node::Union(l, r) => {
                h.tag(if matches!(self, Node::Inter(..)) {
                    7
                } else {
                    8
                });
                l.fingerprint_into(h);
                r.fingerprint_into(h);
            }
        }
    }

    fn has_explicit(&self) -> bool {
        match self {
            Node::Base { base, .. } => base.as_explicit().is_some(),
            Node::Antichain | Node::Rank { .. } => false,
            Node::Dual(inner) => inner.has_explicit(),
            Node::Pareto(children) | Node::Prior(children) => {
                children.iter().any(|c| c.node.has_explicit())
            }
            Node::Inter(l, r) | Node::Union(l, r) => l.has_explicit() || r.has_explicit(),
        }
    }

    fn has_params(&self) -> bool {
        match self {
            Node::Base { base, .. } => base.as_param().is_some(),
            Node::Antichain => false,
            Node::Dual(inner) => inner.has_params(),
            Node::Pareto(children) | Node::Prior(children) => {
                children.iter().any(|c| c.node.has_params())
            }
            Node::Rank { inputs, .. } => inputs.iter().any(|(_, b)| b.as_param().is_some()),
            Node::Inter(l, r) | Node::Union(l, r) => l.has_params() || r.has_params(),
        }
    }

    fn collect_slots(&self, out: &mut Vec<usize>) {
        match self {
            Node::Base { base, .. } => {
                if let Some(p) = base.as_param() {
                    p.spec().collect_slots(out);
                }
            }
            Node::Antichain => {}
            Node::Dual(inner) => inner.collect_slots(out),
            Node::Pareto(children) | Node::Prior(children) => {
                for c in children {
                    c.node.collect_slots(out);
                }
            }
            Node::Rank { inputs, .. } => {
                for (_, b) in inputs {
                    if let Some(p) = b.as_param() {
                        p.spec().collect_slots(out);
                    }
                }
            }
            Node::Inter(l, r) | Node::Union(l, r) => {
                l.collect_slots(out);
                r.collect_slots(out);
            }
        }
    }

    /// Slot patching: identical tree, identical `col`/`eq_cols` layout,
    /// only parameterized base handles replaced by their instantiations.
    fn bind(&self, values: &[Value]) -> Result<Node, CoreError> {
        let bind_ref = |base: &BaseRef| -> Result<BaseRef, CoreError> {
            match base.as_param() {
                Some(shape) => shape.instantiate(values),
                None => Ok(base.clone()),
            }
        };
        Ok(match self {
            Node::Base { col, base } => Node::Base {
                col: *col,
                base: bind_ref(base)?,
            },
            Node::Antichain => Node::Antichain,
            Node::Dual(inner) => Node::Dual(Box::new(inner.bind(values)?)),
            Node::Pareto(children) | Node::Prior(children) => {
                let bound: Vec<Child> = children
                    .iter()
                    .map(|c| {
                        Ok(Child {
                            node: c.node.bind(values)?,
                            eq_cols: c.eq_cols.clone(),
                        })
                    })
                    .collect::<Result<_, CoreError>>()?;
                if matches!(self, Node::Pareto(_)) {
                    Node::Pareto(bound)
                } else {
                    Node::Prior(bound)
                }
            }
            Node::Rank { combine, inputs } => Node::Rank {
                combine: combine.clone(),
                inputs: inputs
                    .iter()
                    .map(|(col, b)| Ok((*col, bind_ref(b)?)))
                    .collect::<Result<_, CoreError>>()?,
            },
            Node::Inter(l, r) => Node::Inter(Box::new(l.bind(values)?), Box::new(r.bind(values)?)),
            Node::Union(l, r) => Node::Union(Box::new(l.bind(values)?), Box::new(r.bind(values)?)),
        })
    }

    fn better(&self, x: &Tuple, y: &Tuple) -> bool {
        match self {
            Node::Base { col, base } => base.better(&x[*col], &y[*col]),
            Node::Antichain => false,
            Node::Dual(inner) => inner.better(y, x),
            // Def. 8 (n-ary form): y beats x iff on every component y is
            // better or equal, and on at least one it is strictly better.
            Node::Pareto(children) => {
                let mut any_strict = false;
                for c in children {
                    if c.node.better(x, y) {
                        any_strict = true;
                    } else if !x.eq_on(y, &c.eq_cols) {
                        return false;
                    }
                }
                any_strict
            }
            // Def. 9 (n-ary form): lexicographic — the first component
            // where the projections differ decides.
            Node::Prior(children) => {
                for c in children {
                    if c.node.better(x, y) {
                        return true;
                    }
                    if !x.eq_on(y, &c.eq_cols) {
                        return false;
                    }
                }
                false
            }
            // Def. 10: x < y iff F(f1(x1),…) < F(f1(y1),…).
            Node::Rank { combine, inputs } => {
                let fx = rank_value(combine, inputs, x);
                let fy = rank_value(combine, inputs, y);
                fx < fy
            }
            Node::Inter(l, r) => l.better(x, y) && r.better(x, y),
            Node::Union(l, r) => l.better(x, y) || r.better(x, y),
        }
    }

    fn utility(&self, t: &Tuple) -> Option<f64> {
        match self {
            Node::Base { col, base } => base.score(&t[*col]),
            Node::Rank { combine, inputs } => Some(rank_value(combine, inputs, t)),
            Node::Dual(inner) => inner.utility(t).map(|u| -u),
            // Sum of component utilities: strictly monotone w.r.t. the
            // Pareto order because each component's `better` implies a
            // strictly higher component score and component equality
            // implies equal scores.
            Node::Pareto(children) => {
                let mut sum = 0.0;
                for c in children {
                    sum += c.node.utility(t)?;
                }
                Some(sum)
            }
            _ => None,
        }
    }
}

fn rank_value(combine: &CombineFn, inputs: &[(usize, BaseRef)], t: &Tuple) -> f64 {
    let scores: Vec<f64> = inputs
        .iter()
        .map(|(col, base)| base.score(&t[*col]).unwrap_or(f64::NEG_INFINITY))
        .collect();
    combine.apply(&scores)
}

/// A score-materialized, columnar form of a compiled preference over one
/// concrete relation.
///
/// Per row, the matrix stores:
///
/// * one `f64` **dominance key** per score-representable sub-term (base
///   preferences with a [`crate::base::BasePreference::dominance_key`],
///   `rank(F)` terms), with the exact per-term guarantee
///   `better(x, y) ⟺ key(x) < key(y)`;
/// * one dense `u32` **equality id** per Pareto/prioritised operand,
///   encoding the operand's attribute projection (`xi = yi` of Def. 8/9)
///   via [`Relation::group_ids`].
///
/// `better(x, y)` then runs the Def. 8–12 recursion over row *indices*
/// touching only these vectors — branch-light numeric comparisons with no
/// `Value` dispatch, no hash-set membership tests, no distance
/// recomputation.
///
/// ## Sharded structure-of-arrays storage
///
/// Keys are stored as **per-shard lanes**, `shards[row >> shift]
/// .lanes[slot][row & mask]`, not row-major strips: the relation's row
/// range is cut into fixed-size shards (a power of two,
/// [`ScoreMatrix::DEFAULT_SHARD_ROWS`] by default) and each shard holds
/// one contiguous `f64` lane per key slot behind an `Arc`. This buys
/// three things:
///
/// * **parallel build** — shards materialize independently on scoped
///   threads (the per-value `dominance_key` dispatch dominates build
///   cost);
/// * **incremental rebuild** — an append or targeted update re-derives
///   only the affected shards and `Arc`-clones the clean ones
///   ([`CompiledPref::score_matrix_incremental`]);
/// * **batch dominance** — a lane is contiguous per slot, so the BNL
///   inner loop can compare one candidate's key vector against a lane of
///   window keys with no per-row stride arithmetic
///   ([`Dominance::pareto_access`]).
///
/// Equality lanes are slot-major over the whole relation (`eqs[slot]
/// [row]`): dictionary encodings need globally consistent first-seen
/// ids, so they build in one sequential hash pass and are recomputed on
/// every incremental rebuild, while the row-pure encodings (value
/// fingerprints, EXPLICIT vertex ids) are patched — prefix copied,
/// dirty and appended rows re-encoded.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    rows: usize,
    /// log2 of the shard row count.
    shard_shift: u32,
    /// Per-shard key lanes: `shards[row >> shard_shift]`.
    shards: Vec<KeyShard>,
    /// Per shard: the relation generation whose build (re)materialized
    /// it. A full build stamps every shard alike; an incremental rebuild
    /// stamps only the shards it actually recomputed.
    shard_gens: Vec<u64>,
    /// Per key slot: the `(column, base preference)` whose
    /// `dominance_key` filled it, for slots that came from a base
    /// preference (`None` for `rank(F)` slots). Lets quality functions
    /// (LEVEL/DISTANCE of `BUT ONLY`) read the materialized keys back
    /// instead of re-walking values.
    key_bases: Vec<Option<(usize, BaseRef)>>,
    /// Slot-major equality codes: `eqs[slot][row]`. A slot is either a
    /// lossless value fingerprint (numeric columns) or a dense dictionary
    /// id (strings, multi-attribute projections); both compare by `==`.
    eqs: Vec<Vec<u64>>,
    /// Per eq slot: which encoding filled it. Incremental rebuilds reuse
    /// the row-pure encodings (fingerprints, EXPLICIT vertex ids) by
    /// patching only dirty and appended rows; dictionary lanes always
    /// re-encode, because dense first-seen ids are a whole-column
    /// property an in-place update can perturb.
    eq_kinds: Vec<EqEncoding>,
    plan: ScorePlan,
}

/// How one equality lane was encoded — decides whether an incremental
/// rebuild may reuse it row-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EqEncoding {
    /// Lossless per-value fingerprint ([`pref_relation::Column::fingerprints`]):
    /// a pure per-row function, reusable under patching.
    Fingerprint,
    /// Dense dictionary ids in first-seen order: only valid as a whole
    /// column, never patched.
    Dictionary,
    /// EXPLICIT-graph vertex ids: a pure per-row function, reusable
    /// under patching.
    Vertex,
}

/// One shard's key storage: a contiguous `f64` lane per key slot,
/// covering a fixed row range. Lanes sit behind `Arc` so incremental
/// rebuilds reuse clean shards without copying.
#[derive(Debug, Clone)]
struct KeyShard {
    lanes: Vec<Arc<[f64]>>,
}

/// Reuse directive for an incremental build: `prev` covers rows
/// `0..prefix_len` of the new relation, identically except rows in
/// `dirty`.
#[derive(Clone, Copy)]
struct Reuse<'a> {
    prev: &'a ScoreMatrix,
    prefix_len: usize,
    dirty: &'a [u32],
}

/// Convert a requested shard row count to the shift (0 = default;
/// otherwise rounded up to a power of two, min 1 row).
fn shard_shift(shard_rows: usize) -> u32 {
    if shard_rows == 0 {
        ScoreMatrix::DEFAULT_SHARD_ROWS.trailing_zeros()
    } else {
        shard_rows.next_power_of_two().trailing_zeros()
    }
}

/// The structural skeleton `better` interprets over the materialized
/// columns. Mirrors [`Node`] restricted to score-representable shapes.
#[derive(Debug, Clone)]
enum ScorePlan {
    /// `better ⟺ key[x] < key[y]`.
    Key(usize),
    /// Never better.
    Antichain,
    /// Argument swap.
    Dual(Box<ScorePlan>),
    /// Flat Pareto over key children — the skyline-critical fast path.
    ParetoKeys(Vec<(usize, usize)>),
    /// General Pareto: `(child, eq slot)` per operand.
    Pareto(Vec<(ScorePlan, usize)>),
    /// Prioritised accumulation: `(child, eq slot)` per operand.
    Prior(Vec<(ScorePlan, usize)>),
    /// EXPLICIT sub-term: per-row vertex ids in slot `ids`, dominance via
    /// the graph's reachability bitset. A genuine partial order — the one
    /// base shape with no `f64` embedding that still materializes.
    Explicit { ids: usize, reach: Reachability },
}

impl ScoreMatrix {
    /// Default rows per shard (a power of two). Sized so one shard's key
    /// lanes stay cache-resident during a batch compare while still
    /// giving parallel builds enough shards to spread across cores.
    pub const DEFAULT_SHARD_ROWS: usize = 4096;

    fn build(
        node: &Node,
        r: &Relation,
        threads: usize,
        shift: u32,
        reuse: Option<Reuse<'_>>,
    ) -> Option<ScoreMatrix> {
        let mut b = MatrixBuilder {
            key_specs: Vec::new(),
            key_bases: Vec::new(),
            eq_specs: Vec::new(),
            eq_cache: HashMap::new(),
        };
        let plan = b.plan(node)?;
        // Key lanes validate per value (every dominance key must embed),
        // so they run first: non-embeddable relations bail before paying
        // for the equality pass.
        let (shards, shard_gens) = build_key_shards(&b.key_specs, r, shift, threads, reuse)?;
        let (eqs, eq_kinds) = build_eqs(&b.eq_specs, r, reuse);
        Some(ScoreMatrix {
            rows: r.len(),
            shard_shift: shift,
            shards,
            shard_gens,
            key_bases: b.key_bases,
            eqs,
            eq_kinds,
            plan,
        })
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the matrix over an empty relation?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of materialized key columns.
    pub fn key_slots(&self) -> usize {
        self.key_bases.len()
    }

    /// Number of materialized equality-id columns.
    pub fn eq_slots(&self) -> usize {
        self.eqs.len()
    }

    /// Rows per shard (a power of two; the last shard may be partial).
    pub fn shard_rows(&self) -> usize {
        1 << self.shard_shift
    }

    /// Number of row-range shards (`0` on an empty relation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard build stamps: the relation generation whose (re)build
    /// materialized each shard's key lanes. After an incremental rebuild
    /// only the recomputed shards carry the new generation — the
    /// observable form of per-shard invalidation.
    pub fn shard_generations(&self) -> &[u64] {
        &self.shard_gens
    }

    #[inline]
    fn key(&self, row: usize, slot: usize) -> f64 {
        let mask = (1usize << self.shard_shift) - 1;
        self.shards[row >> self.shard_shift].lanes[slot][row & mask]
    }

    /// The key slot filled by `base`'s `dominance_key` over column
    /// `col`, when this matrix materialized that base preference
    /// (identified like [`crate::base::base_eq`]: name + printed
    /// parameters).
    pub fn base_key_slot(&self, col: usize, base: &BaseRef) -> Option<usize> {
        self.key_bases.iter().position(|slot| {
            slot.as_ref()
                .is_some_and(|(c, b)| *c == col && base_eq(b, base))
        })
    }

    /// The materialized dominance key of `row` in `slot` (a
    /// [`ScoreMatrix::base_key_slot`] result). The inverse quality
    /// lookups [`crate::base::BasePreference::level_from_key`] /
    /// [`distance_from_key`](crate::base::BasePreference::distance_from_key)
    /// apply to exactly these values.
    pub fn key_at(&self, row: usize, slot: usize) -> f64 {
        self.key(row, slot)
    }

    #[inline]
    fn eq(&self, row: usize, slot: usize) -> u64 {
        self.eqs[slot][row]
    }

    /// The strict better-than test on row indices: is `y` better than
    /// `x`? Agrees exactly with [`CompiledPref::better`] on the rows of
    /// the relation this matrix was built from.
    #[inline]
    pub fn better(&self, x: usize, y: usize) -> bool {
        self.eval(&self.plan, x, y)
    }

    fn eval(&self, plan: &ScorePlan, x: usize, y: usize) -> bool {
        match plan {
            ScorePlan::Key(s) => self.key(x, *s) < self.key(y, *s),
            ScorePlan::Antichain => false,
            ScorePlan::Dual(inner) => self.eval(inner, y, x),
            // Def. 8 over keys: a key child is strictly better exactly on
            // `<`; on unequal projections with no strict win, y cannot
            // dominate. (Equal eq ids imply equal keys, so the equality
            // branch is only reachable with `key(x) == key(y)`.)
            ScorePlan::ParetoKeys(slots) => {
                let mut any_strict = false;
                for &(k, e) in slots {
                    if self.key(x, k) < self.key(y, k) {
                        any_strict = true;
                    } else if self.eq(x, e) != self.eq(y, e) {
                        return false;
                    }
                }
                any_strict
            }
            ScorePlan::Pareto(children) => {
                let mut any_strict = false;
                for (child, e) in children {
                    if self.eval(child, x, y) {
                        any_strict = true;
                    } else if self.eq(x, *e) != self.eq(y, *e) {
                        return false;
                    }
                }
                any_strict
            }
            // Def. 9: first operand whose projections differ decides.
            ScorePlan::Prior(children) => {
                for (child, e) in children {
                    if self.eval(child, x, y) {
                        return true;
                    }
                    if self.eq(x, *e) != self.eq(y, *e) {
                        return false;
                    }
                }
                false
            }
            ScorePlan::Explicit { ids, reach } => {
                reach.better_ids(self.eq(x, *ids) as usize, self.eq(y, *ids) as usize)
            }
        }
    }

    /// Does this matrix run any sub-term on the EXPLICIT reachability
    /// bitset backend (as opposed to pure `f64` dominance keys)?
    pub fn explicit_backend(&self) -> bool {
        fn walk(p: &ScorePlan) -> bool {
            match p {
                ScorePlan::Explicit { .. } => true,
                ScorePlan::Dual(inner) => walk(inner),
                ScorePlan::Pareto(children) | ScorePlan::Prior(children) => {
                    children.iter().any(|(c, _)| walk(c))
                }
                ScorePlan::Key(_) | ScorePlan::Antichain | ScorePlan::ParetoKeys(_) => false,
            }
        }
        walk(&self.plan)
    }
}

/// A pairwise dominance backend over row indices — the interface the
/// BMO inner loops (BNL windows, SFS filter passes, naive scans) are
/// generic over, implemented by the [`ScoreMatrix`] itself and by
/// [`MatrixWindow`] views onto one.
pub trait Dominance {
    /// Number of rows covered.
    fn len(&self) -> usize;

    /// Is `y` better than `x`?
    fn better(&self, x: usize, y: usize) -> bool;

    /// Is the backend over an empty relation?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batch-gather access to the backend's flat Pareto dimensions, when
    /// the order is a pure `ParetoKeys` plan (every operand a dominance
    /// key). `None` — the default — means the backend has no such lanes
    /// and callers must stay on the pairwise [`Dominance::better`] path.
    fn pareto_access(&self) -> Option<ParetoAccess<'_>> {
        None
    }

    /// Preferred row-chunk alignment for parallel partitioning (`1` = no
    /// preference). Sharded matrices report their shard size so chunk
    /// boundaries coincide with lane boundaries.
    fn chunk_alignment(&self) -> usize {
        1
    }
}

/// Gather-based access to the key/equality lanes of a flat Pareto order
/// — the batch-dominance interface of [`Dominance::pareto_access`].
///
/// One call to [`ParetoAccess::gather`] copies a row's per-dimension
/// `(key, eq)` pairs into caller-owned buffers; the caller then compares
/// that row against *its own* contiguous structure-of-arrays copies of
/// whatever row set it maintains (e.g. a BNL window), which is where the
/// auto-vectorizable inner loops live. Only the gather pays the window
/// indirection of a [`MatrixWindow`].
#[derive(Debug, Clone, Copy)]
pub struct ParetoAccess<'m> {
    matrix: &'m ScoreMatrix,
    /// `(key slot, eq slot)` per Pareto dimension.
    slots: &'m [(usize, usize)],
    /// Window indirection: row `i` here is matrix row `ids[i]`.
    ids: Option<&'m [u32]>,
}

impl ParetoAccess<'_> {
    /// Number of Pareto dimensions.
    pub fn dims(&self) -> usize {
        self.slots.len()
    }

    /// Number of rows covered (window rows when windowed).
    pub fn len(&self) -> usize {
        match self.ids {
            Some(ids) => ids.len(),
            None => self.matrix.len(),
        }
    }

    /// Is the row set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy row `row`'s per-dimension dominance keys and equality codes
    /// into `keys` / `eqs` (each at least [`ParetoAccess::dims`] long).
    /// Keys are never NaN — the matrix build rejects NaN embeddings.
    #[inline]
    pub fn gather(&self, row: usize, keys: &mut [f64], eqs: &mut [u64]) {
        let base = match self.ids {
            Some(ids) => ids[row] as usize,
            None => row,
        };
        for (d, &(k, e)) in self.slots.iter().enumerate() {
            keys[d] = self.matrix.key(base, k);
            eqs[d] = self.matrix.eq(base, e);
        }
    }
}

impl Dominance for ScoreMatrix {
    fn len(&self) -> usize {
        ScoreMatrix::len(self)
    }

    fn better(&self, x: usize, y: usize) -> bool {
        ScoreMatrix::better(self, x, y)
    }

    fn pareto_access(&self) -> Option<ParetoAccess<'_>> {
        match &self.plan {
            ScorePlan::ParetoKeys(slots) => Some(ParetoAccess {
                matrix: self,
                slots,
                ids: None,
            }),
            _ => None,
        }
    }

    fn chunk_alignment(&self) -> usize {
        self.shard_rows()
    }
}

/// A view of a shared [`ScoreMatrix`], optionally *windowed* onto a row
/// subset by an index vector.
///
/// Every per-row quantity the matrix materializes — dominance keys,
/// equality ids, EXPLICIT vertex ids — is a pure function of that row's
/// values (equality ids compare only for equality, which restriction
/// preserves), so the matrix built for a whole relation answers
/// dominance questions for **any** subset of its rows: evaluating row
/// `i` of a subset is evaluating base row `ids[i]` of the full matrix.
/// A windowed view is therefore semantically identical to the matrix a
/// fresh materialization of the subset would produce, at the cost of
/// one index indirection per row access — which is how a *never-seen*
/// selection over an already-materialized base runs warm.
#[derive(Debug, Clone)]
pub struct MatrixWindow {
    matrix: Arc<ScoreMatrix>,
    /// `None` = the identity view (the full matrix).
    ids: Option<Arc<[u32]>>,
}

impl MatrixWindow {
    /// The identity view over a whole matrix.
    pub fn full(matrix: Arc<ScoreMatrix>) -> Self {
        MatrixWindow { matrix, ids: None }
    }

    /// Window `matrix` onto the subset selected by `ids` (row `i` of the
    /// window is base row `ids[i]`).
    ///
    /// Every id must be `< matrix.len()`; out-of-range ids panic on
    /// first access, exactly like out-of-range row indices on the
    /// matrix itself.
    pub fn windowed(matrix: Arc<ScoreMatrix>, ids: Arc<[u32]>) -> Self {
        MatrixWindow {
            matrix,
            ids: Some(ids),
        }
    }

    /// Is this a genuine window (index indirection), as opposed to the
    /// identity view?
    pub fn is_windowed(&self) -> bool {
        self.ids.is_some()
    }

    /// The shared underlying matrix.
    pub fn matrix(&self) -> &Arc<ScoreMatrix> {
        &self.matrix
    }

    /// The base-matrix row backing window row `row`.
    #[inline]
    fn base_row(&self, row: usize) -> usize {
        match &self.ids {
            Some(ids) => ids[row] as usize,
            None => row,
        }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match &self.ids {
            Some(ids) => ids.len(),
            None => self.matrix.len(),
        }
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The strict better-than test on *view* row indices.
    #[inline]
    pub fn better(&self, x: usize, y: usize) -> bool {
        self.matrix.better(self.base_row(x), self.base_row(y))
    }

    /// [`ScoreMatrix::base_key_slot`], unchanged by windowing (slots are
    /// per-term, not per-row).
    pub fn base_key_slot(&self, col: usize, base: &BaseRef) -> Option<usize> {
        self.matrix.base_key_slot(col, base)
    }

    /// The materialized dominance key of *view* row `row` in `slot`.
    pub fn key_at(&self, row: usize, slot: usize) -> f64 {
        self.matrix.key_at(self.base_row(row), slot)
    }

    /// Does the underlying matrix run EXPLICIT sub-terms on the
    /// reachability-bitset backend?
    pub fn explicit_backend(&self) -> bool {
        self.matrix.explicit_backend()
    }
}

impl Dominance for MatrixWindow {
    fn len(&self) -> usize {
        MatrixWindow::len(self)
    }

    fn better(&self, x: usize, y: usize) -> bool {
        MatrixWindow::better(self, x, y)
    }

    fn pareto_access(&self) -> Option<ParetoAccess<'_>> {
        match &self.matrix.plan {
            ScorePlan::ParetoKeys(slots) => Some(ParetoAccess {
                matrix: &self.matrix,
                slots,
                ids: self.ids.as_deref(),
            }),
            _ => None,
        }
    }

    fn chunk_alignment(&self) -> usize {
        // A windowed view's row indices do not map onto contiguous base
        // rows, so shard alignment means nothing there.
        match self.ids {
            Some(_) => 1,
            None => self.matrix.shard_rows(),
        }
    }
}

/// Mirror of [`MatrixBuilder::plan`]'s success condition, minus every
/// allocation: keys must embed (non-`None`, non-NaN) for each base and
/// rank term, EXPLICIT graphs always materialize (vertex-id encoding),
/// and equality encodings always exist.
fn supports(node: &Node, r: &Relation) -> bool {
    match node {
        Node::Base { col, base } => {
            base.as_explicit().is_some()
                || r.column(*col)
                    .iter()
                    .all(|v| base.dominance_key(v).is_some_and(|k| !k.is_nan()))
        }
        Node::Antichain => true,
        Node::Dual(inner) => supports(inner, r),
        Node::Rank { combine, inputs } => {
            r.iter().all(|t| !rank_value(combine, inputs, t).is_nan())
        }
        Node::Pareto(children) | Node::Prior(children) => {
            children.iter().all(|c| supports(&c.node, r))
        }
        Node::Inter(..) | Node::Union(..) => false,
    }
}

/// How one key slot's lane is computed from a row. Structural — carries
/// no relation data, so a plan compiles once and its lanes materialize
/// per shard, on whichever thread owns the shard.
enum KeySpec {
    /// `base.dominance_key(row[col])`.
    Base { col: usize, base: BaseRef },
    /// `F(f1(row[c1]), …)` of `rank(F)`.
    Rank {
        combine: CombineFn,
        inputs: Vec<(usize, BaseRef)>,
    },
}

/// How one equality slot's codes are computed. Equality lanes are
/// relation-wide (dictionary ids need globally consistent first-seen
/// order), so these evaluate in one sequential pass.
enum EqSpec {
    /// Projection equality over `cols`: value fingerprints for a single
    /// numeric column, dictionary group ids otherwise.
    Projection(Vec<usize>),
    /// EXPLICIT vertex ids: `base`'s graph-vertex index of `row[col]`,
    /// with every outside value collapsed onto `outside`.
    ExplicitIds {
        col: usize,
        base: BaseRef,
        outside: u64,
    },
}

struct MatrixBuilder {
    key_specs: Vec<KeySpec>,
    /// Per key slot: origin `(col, base)` for base-preference slots.
    key_bases: Vec<Option<(usize, BaseRef)>>,
    eq_specs: Vec<EqSpec>,
    /// Dedup equality slots by their column signature — Pareto and Prior
    /// operands over the same attribute set share one encoding.
    eq_cache: HashMap<Vec<usize>, usize>,
}

impl MatrixBuilder {
    /// Compile `node` into a [`ScorePlan`] plus the key/eq lane specs the
    /// build phases execute. Purely structural: data-dependent failures
    /// (non-embeddable values) surface later, in [`build_key_shards`].
    fn plan(&mut self, node: &Node) -> Option<ScorePlan> {
        match node {
            Node::Base { col, base } => {
                if let Some(e) = base.as_explicit() {
                    // EXPLICIT has no f64 embedding (genuine partial
                    // order), but values resolve to graph-vertex ids once
                    // and dominance becomes a reachability-bitset probe.
                    let reach = e.reachability();
                    let outside = reach.outside_id() as u64;
                    self.eq_specs.push(EqSpec::ExplicitIds {
                        col: *col,
                        base: base.clone(),
                        outside,
                    });
                    return Some(ScorePlan::Explicit {
                        ids: self.eq_specs.len() - 1,
                        reach,
                    });
                }
                Some(ScorePlan::Key(self.push_key(
                    KeySpec::Base {
                        col: *col,
                        base: base.clone(),
                    },
                    Some((*col, base.clone())),
                )))
            }
            Node::Antichain => Some(ScorePlan::Antichain),
            Node::Dual(inner) => Some(ScorePlan::Dual(Box::new(self.plan(inner)?))),
            Node::Rank { combine, inputs } => Some(ScorePlan::Key(self.push_key(
                KeySpec::Rank {
                    combine: combine.clone(),
                    inputs: inputs.clone(),
                },
                None,
            ))),
            Node::Pareto(children) => {
                let built = self.children(children)?;
                // Flatten all-key Pareto terms into the tight loop.
                if built.iter().all(|(c, _)| matches!(c, ScorePlan::Key(_))) {
                    Some(ScorePlan::ParetoKeys(
                        built
                            .into_iter()
                            .map(|(c, e)| match c {
                                ScorePlan::Key(k) => (k, e),
                                _ => unreachable!("all children checked to be keys"),
                            })
                            .collect(),
                    ))
                } else {
                    Some(ScorePlan::Pareto(built))
                }
            }
            Node::Prior(children) => Some(ScorePlan::Prior(self.children(children)?)),
            // Intersection / disjoint union compare two full sub-orders
            // per pair; no per-row embedding exists in general.
            Node::Inter(..) | Node::Union(..) => None,
        }
    }

    fn children(&mut self, children: &[Child]) -> Option<Vec<(ScorePlan, usize)>> {
        children
            .iter()
            .map(|c| {
                let plan = self.plan(&c.node)?;
                let eq = self.eq_slot(&c.eq_cols);
                Some((plan, eq))
            })
            .collect()
    }

    fn push_key(&mut self, spec: KeySpec, origin: Option<(usize, BaseRef)>) -> usize {
        self.key_specs.push(spec);
        self.key_bases.push(origin);
        self.key_specs.len() - 1
    }

    fn eq_slot(&mut self, cols: &[usize]) -> usize {
        if let Some(&slot) = self.eq_cache.get(cols) {
            return slot;
        }
        self.eq_specs.push(EqSpec::Projection(cols.to_vec()));
        let slot = self.eq_specs.len() - 1;
        self.eq_cache.insert(cols.to_vec(), slot);
        slot
    }
}

/// Materialize one shard's lane for `spec` over rows `lo..hi`. `None`
/// when any value fails to embed (no dominance key, or a NaN key that
/// would order inconsistently under `<`) — which aborts the whole build,
/// exactly like the former whole-column validation.
fn compute_lane(spec: &KeySpec, r: &Relation, lo: usize, hi: usize) -> Option<Vec<f64>> {
    let mut lane = Vec::with_capacity(hi - lo);
    match spec {
        KeySpec::Base { col, base } => {
            for i in lo..hi {
                lane.push(
                    base.dominance_key(&r.row(i)[*col])
                        .filter(|k| !k.is_nan())?,
                );
            }
        }
        KeySpec::Rank { combine, inputs } => {
            for i in lo..hi {
                let k = rank_value(combine, inputs, r.row(i));
                if k.is_nan() {
                    return None;
                }
                lane.push(k);
            }
        }
    }
    Some(lane)
}

/// Materialize the equality lanes, one sequential pass per slot — or,
/// on an incremental rebuild, patch the row-pure lanes of `reuse.prev`
/// in place of a full pass: the fingerprint and EXPLICIT-vertex
/// encodings are pure per-row functions, so copying the clean prefix and
/// re-encoding only dirty and appended rows agrees bit-for-bit with a
/// fresh build. Dictionary lanes (strings, multi-attribute projections)
/// always re-encode: their dense first-seen ids are a whole-column
/// property.
fn build_eqs(
    specs: &[EqSpec],
    r: &Relation,
    reuse: Option<Reuse<'_>>,
) -> (Vec<Vec<u64>>, Vec<EqEncoding>) {
    // Lane-shape mismatch (a structurally different `prev`) reuses
    // nothing, mirroring the key-shard layout guard.
    let prev = reuse.filter(|ru| ru.prev.eq_slots() == specs.len());
    let mut lanes = Vec::with_capacity(specs.len());
    let mut kinds = Vec::with_capacity(specs.len());
    for (slot, spec) in specs.iter().enumerate() {
        let patched = prev.and_then(|ru| patch_eq_lane(spec, r, ru, slot));
        let (lane, kind) = patched.unwrap_or_else(|| encode_eq_lane(spec, r));
        lanes.push(lane);
        kinds.push(kind);
    }
    (lanes, kinds)
}

/// One full sequential encoding pass for `spec` over `r`.
fn encode_eq_lane(spec: &EqSpec, r: &Relation) -> (Vec<u64>, EqEncoding) {
    match spec {
        EqSpec::Projection(cols) => {
            // Prefer the hash-free fingerprint encoding for single
            // numeric columns; dictionary-encode strings and wider
            // projections.
            let fp = match cols.as_slice() {
                [col] => r.column(*col).fingerprints(),
                _ => None,
            };
            match fp {
                Some(lane) => (lane, EqEncoding::Fingerprint),
                None => {
                    let (ids, _) = r.group_ids(cols);
                    (
                        ids.into_iter().map(u64::from).collect(),
                        EqEncoding::Dictionary,
                    )
                }
            }
        }
        EqSpec::ExplicitIds { col, base, outside } => {
            let e = base
                .as_explicit()
                .expect("ExplicitIds specs are built from EXPLICIT bases");
            (
                r.column(*col)
                    .iter()
                    .map(|v| e.vertex_index(v).map_or(*outside, |i| i as u64))
                    .collect(),
                EqEncoding::Vertex,
            )
        }
    }
}

/// Try to derive slot `slot` of an incremental rebuild by patching the
/// previous lane: copy rows `0..prefix_len`, re-encode the dirty rows
/// inside the prefix, extend with the appended rows. `None` (fall back
/// to [`encode_eq_lane`]) when the previous lane used a non-row-pure
/// encoding or a patched value stops being encodable (e.g. a NULL
/// written into a fingerprint lane).
fn patch_eq_lane(
    spec: &EqSpec,
    r: &Relation,
    ru: Reuse<'_>,
    slot: usize,
) -> Option<(Vec<u64>, EqEncoding)> {
    let kind = *ru.prev.eq_kinds.get(slot)?;
    let encode_row: Box<dyn Fn(usize) -> Option<u64>> = match (spec, kind) {
        (EqSpec::Projection(cols), EqEncoding::Fingerprint) => match cols.as_slice() {
            [col] => {
                let col = *col;
                Box::new(move |row| r.column(col).fingerprint_at(row))
            }
            _ => return None,
        },
        (EqSpec::ExplicitIds { col, base, outside }, EqEncoding::Vertex) => {
            let e = base
                .as_explicit()
                .expect("ExplicitIds specs are built from EXPLICIT bases");
            let (col, outside) = (*col, *outside);
            Box::new(move |row| {
                Some(
                    e.vertex_index(&r.row(row)[col])
                        .map_or(outside, |i| i as u64),
                )
            })
        }
        _ => return None,
    };
    let mut lane = ru.prev.eqs[slot][..ru.prefix_len].to_vec();
    for &d in ru.dirty {
        let d = d as usize;
        if d < ru.prefix_len {
            lane[d] = encode_row(d)?;
        }
    }
    for row in ru.prefix_len..r.len() {
        lane.push(encode_row(row)?);
    }
    Some((lane, kind))
}

/// Materialize the key shards for `specs` over `r`, fanning independent
/// shards out over up to `threads` scoped worker threads and `Arc`-reusing
/// any shard `reuse` proves clean. `None` when any value fails to embed.
fn build_key_shards(
    specs: &[KeySpec],
    r: &Relation,
    shift: u32,
    threads: usize,
    reuse: Option<Reuse<'_>>,
) -> Option<(Vec<KeyShard>, Vec<u64>)> {
    let rows = r.len();
    let shard_rows = 1usize << shift;
    let n_shards = rows.div_ceil(shard_rows);
    let gen = r.generation();

    // A layout-mismatched `prev` (different shard size or slot count)
    // reuses nothing and degenerates to a full build.
    let prev =
        reuse.filter(|ru| ru.prev.shard_shift == shift && ru.prev.key_slots() == specs.len());

    let mut shards: Vec<Option<(KeyShard, u64)>> = Vec::with_capacity(n_shards);
    let mut todo: Vec<usize> = Vec::new();
    for s in 0..n_shards {
        let lo = s * shard_rows;
        let hi = (lo + shard_rows).min(rows);
        let clean = prev.as_ref().is_some_and(|ru| {
            // Clean ⟺ the shard lies fully inside the unchanged prefix,
            // covers the same row range in `prev` (a partial tail shard
            // that grew must rebuild), and contains no dirty row.
            hi <= ru.prefix_len
                && ((s + 1) * shard_rows).min(ru.prev.len()) == hi
                && !ru
                    .dirty
                    .iter()
                    .any(|&d| (d as usize) >= lo && (d as usize) < hi)
        });
        match clean.then(|| prev.as_ref().unwrap()) {
            Some(ru) => shards.push(Some((ru.prev.shards[s].clone(), ru.prev.shard_gens[s]))),
            None => {
                shards.push(None);
                todo.push(s);
            }
        }
    }

    let compute = |s: usize| -> Option<KeyShard> {
        let lo = s * shard_rows;
        let hi = (lo + shard_rows).min(rows);
        let mut lanes = Vec::with_capacity(specs.len());
        for spec in specs {
            lanes.push(Arc::from(compute_lane(spec, r, lo, hi)?));
        }
        Some(KeyShard { lanes })
    };

    let workers = threads.max(1).min(todo.len());
    let computed: Vec<Option<KeyShard>> = if workers <= 1 {
        todo.iter().map(|&s| compute(s)).collect()
    } else {
        let chunk = todo.len().div_ceil(workers);
        let mut out = Vec::with_capacity(todo.len());
        std::thread::scope(|scope| {
            let compute = &compute;
            let handles: Vec<_> = todo
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || group.iter().map(|&s| compute(s)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("shard build worker panicked"));
            }
        });
        out
    };
    for (&s, shard) in todo.iter().zip(computed) {
        shards[s] = Some((shard?, gen));
    }

    let mut out_shards = Vec::with_capacity(n_shards);
    let mut gens = Vec::with_capacity(n_shards);
    for entry in shards {
        let (shard, g) = entry.expect("every shard either reused or computed");
        out_shards.push(shard);
        gens.push(g);
    }
    Some((out_shards, gens))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spo::check_spo;
    use crate::term::{around, highest, lowest, neg, pos, Pref};
    use pref_relation::{rel, Relation};

    fn compile(p: &Pref, r: &Relation) -> CompiledPref {
        CompiledPref::compile(p, r.schema()).unwrap()
    }

    /// Example 2's relation R(A1, A2, A3).
    fn example2_rel() -> Relation {
        rel! {
            ("A1": Int, "A2": Int, "A3": Int);
            (-5, 3, 4),
            (-5, 4, 4),
            (5, 1, 8),
            (5, 6, 6),
            (-6, 0, 6),
            (-6, 0, 4),
            (6, 2, 7),
        }
    }

    fn example2_pref() -> Pref {
        around("A1", 0).pareto(lowest("A2")).pareto(highest("A3"))
    }

    #[test]
    fn compile_rejects_unknown_attrs() {
        let r = example2_rel();
        let err = CompiledPref::compile(&lowest("missing"), r.schema()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownAttr(_)));
        let err =
            CompiledPref::compile(&crate::term::antichain(["missing"]), r.schema()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownAttr(_)));
    }

    #[test]
    fn example2_pareto_better_than_graph_relations() {
        let r = example2_rel();
        let c = compile(&example2_pref(), &r);
        let rows = r.to_owned_rows();
        // From the drawn graph: val2 < val1, val4 < val3, val7 < val3,
        // val6 < val5; the level-1 values are pairwise unranked.
        assert!(c.better(&rows[1], &rows[0])); // val2 < val1
        assert!(c.better(&rows[3], &rows[2])); // val4 < val3
        assert!(c.better(&rows[6], &rows[2])); // val7 < val3
        assert!(c.better(&rows[5], &rows[4])); // val6 < val5
        for &(a, b) in &[(0usize, 2usize), (0, 4), (2, 4)] {
            assert!(
                !c.better(&rows[a], &rows[b]),
                "val{} vs val{}",
                a + 1,
                b + 1
            );
            assert!(!c.better(&rows[b], &rows[a]));
        }
    }

    #[test]
    fn pareto_requires_no_worse_component() {
        // Def. 8: "it is not tolerable that v is worse than w in any
        // component value."
        let r = rel! {
            ("A1": Int, "A2": Int);
            (0, 0),   // best on A1, worst on A2
            (9, 9),   // worst on A1, best on A2
        };
        let p = around("A1", 0).pareto(highest("A2"));
        let c = compile(&p, &r);
        assert!(!c.better(r.row(0), r.row(1)));
        assert!(!c.better(r.row(1), r.row(0)));
    }

    #[test]
    fn example3_shared_attribute_pareto() {
        // P7 = POS(Color,{green,yellow}) ⊗ NEG(Color,{red,green,blue,purple})
        let r = rel! {
            ("color": Str);
            ("red",), ("green",), ("yellow",), ("blue",), ("black",), ("purple",),
        };
        let p = pos("color", ["green", "yellow"])
            .pareto(neg("color", ["red", "green", "blue", "purple"]));
        let c = compile(&p, &r);
        let row = |i: usize| r.row(i);
        // On a shared attribute, Pareto needs BOTH operands to agree
        // (Prop. 6: ⊗ ≡ ♦ there). Only yellow wins both views, so only
        // yellow dominates the NEG values; green and black are maximal
        // but dominate nothing — the "non-discriminating compromise".
        for &loser in &[0usize, 3, 5] {
            assert!(c.better(row(loser), row(2)), "{loser} < yellow");
            assert!(!c.better(row(2), row(loser)));
            // green (P5's view) and black (P6's view) do not dominate.
            assert!(!c.better(row(loser), row(1)));
            assert!(!c.better(row(loser), row(4)));
        }
        // Paper figure: Level 1 = {yellow, green, black},
        //               Level 2 = {red, blue, purple}.
        let g = crate::graph::BetterGraph::from_relation(&c, &r).unwrap();
        assert_eq!(g.maximal(), vec![1, 2, 4]);
        assert_eq!(g.level_groups(), vec![vec![1, 2, 4], vec![0, 3, 5]]);
    }

    #[test]
    fn prior_is_lexicographic() {
        let r = rel! {
            ("A1": Int, "A2": Int);
            (1, 9),
            (1, 2),
            (5, 0),
        };
        // LOWEST(A1) & LOWEST(A2)
        let p = lowest("A1").prior(lowest("A2"));
        let c = compile(&p, &r);
        let rows = r.to_owned_rows();
        assert!(c.better(&rows[0], &rows[1])); // tie on A1, A2 decides
        assert!(c.better(&rows[2], &rows[0])); // A1 decides
        assert!(c.better(&rows[2], &rows[1]));
        assert!(!c.better(&rows[1], &rows[2]));
    }

    #[test]
    fn antichain_prior_is_grouping() {
        // A↔ & P ranks only within equal A-values (the Def. 16 derivation).
        let r = rel! {
            ("make": Str, "price": Int);
            ("audi", 10),
            ("audi", 20),
            ("bmw", 5),
        };
        let p = crate::term::antichain(["make"]).prior(lowest("price"));
        let c = compile(&p, &r);
        let rows = r.to_owned_rows();
        assert!(c.better(&rows[1], &rows[0])); // same make, cheaper
        assert!(!c.better(&rows[0], &rows[2])); // different make: unranked
        assert!(!c.better(&rows[2], &rows[0]));
    }

    #[test]
    fn rank_example5() {
        // Example 5: f1 = distance(x,0), f2 = distance(x,−2), F = x1 + 2·x2.
        let r = rel! {
            ("A1": Int, "A2": Int);
            (-5, 3),
            (-5, 4),
            (5, 1),
            (5, 6),
            (-6, 0),
            (-6, 0),
        };
        let f1 = crate::term::score("A1", "dist0", |v| v.ordinal().map(|o| o.abs()));
        let f2 = crate::term::score("A2", "dist-2", |v| v.ordinal().map(|o| (o + 2.0).abs()));
        let p = Pref::rank(CombineFn::weighted_sum(vec![1.0, 2.0]), vec![f1, f2]).unwrap();
        let c = compile(&p, &r);
        // F-values: 15, 17, 11, 21, 10, 10 → chain val4→val2→val1→val3→{val5,val6}
        let rows = r.to_owned_rows();
        let f = |i: usize| {
            // recover F via utility
            c.utility(&rows[i]).unwrap()
        };
        assert_eq!(f(0), 15.0);
        assert_eq!(f(1), 17.0);
        assert_eq!(f(2), 11.0);
        assert_eq!(f(3), 21.0);
        assert_eq!(f(4), 10.0);
        assert!(c.better(&rows[1], &rows[3])); // val2 < val4
        assert!(c.better(&rows[0], &rows[1])); // val1 < val2
        assert!(c.better(&rows[2], &rows[0])); // val3 < val1
        assert!(c.better(&rows[4], &rows[2])); // val5 < val3
                                               // val5 and val6 unranked (equal F)
        assert!(!c.better(&rows[4], &rows[5]));
        assert!(!c.better(&rows[5], &rows[4]));
    }

    #[test]
    fn dual_flips_everything() {
        let r = example2_rel();
        let p = example2_pref();
        let c = compile(&p, &r);
        let d = compile(&p.clone().dual(), &r);
        for x in r.iter() {
            for y in r.iter() {
                assert_eq!(c.better(x, y), d.better(y, x));
            }
        }
    }

    #[test]
    fn compiled_orders_are_spos_on_sample() {
        let r = example2_rel();
        for p in [
            example2_pref(),
            around("A1", 0).prior(lowest("A2")),
            example2_pref().dual(),
            lowest("A1").intersect(highest("A1")).unwrap(),
        ] {
            let c = compile(&p, &r);
            check_spo(r.len(), |x, y| c.better(r.row(x), r.row(y)))
                .unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn score_vector_for_skyline_shape() {
        let r = rel! { ("a": Int, "b": Int); (1, 2) };
        let sky = lowest("a").pareto(highest("b"));
        let c = compile(&sky, &r);
        assert_eq!(c.score_vector(r.row(0)), Some(vec![-1.0, 2.0]));
        // AROUND is not score-injective → not skyline-shaped
        let not_sky = around("a", 0).pareto(highest("b"));
        let c2 = compile(&not_sky, &r);
        assert_eq!(c2.score_vector(r.row(0)), None);
    }

    #[test]
    fn score_matrix_agrees_with_generic_better() {
        let r = example2_rel();
        for p in [
            example2_pref(),
            around("A1", 0).prior(lowest("A2")),
            example2_pref().dual(),
            lowest("A1").prior(crate::term::antichain(["A2"]).prior(highest("A3"))),
            Pref::rank(CombineFn::sum(), vec![lowest("A1"), highest("A2")]).unwrap(),
        ] {
            let c = compile(&p, &r);
            let m = c
                .score_matrix(&r)
                .unwrap_or_else(|| panic!("{p} should materialize"));
            assert_eq!(m.len(), r.len());
            for x in 0..r.len() {
                for y in 0..r.len() {
                    assert_eq!(
                        m.better(x, y),
                        c.better(r.row(x), r.row(y)),
                        "matrix diverged for {p} on rows {x}, {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn score_matrix_handles_shared_attribute_pareto() {
        // Example 3's P7: both operands read the same column, so the
        // equality slots must encode the same projection once.
        let r = rel! {
            ("color": Str);
            ("red",), ("green",), ("yellow",), ("blue",), ("black",), ("purple",),
        };
        let p = pos("color", ["green", "yellow"])
            .pareto(neg("color", ["red", "green", "blue", "purple"]));
        let c = compile(&p, &r);
        let m = c.score_matrix(&r).expect("level-based bases materialize");
        assert_eq!(m.eq_slots(), 1, "shared projection should be deduplicated");
        for x in 0..r.len() {
            for y in 0..r.len() {
                assert_eq!(m.better(x, y), c.better(r.row(x), r.row(y)));
            }
        }
    }

    #[test]
    fn score_matrix_flattens_skyline_shapes() {
        let r = example2_rel();
        let c = compile(&lowest("A1").pareto(highest("A2")), &r);
        let m = c.score_matrix(&r).unwrap();
        assert_eq!(m.key_slots(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn score_matrix_unavailable_for_non_embeddable_terms() {
        let r = rel! { ("color": Str); ("red",), ("green",) };
        // Chains over string columns compare lexically, off the f64 axis.
        let p = lowest("color");
        assert!(compile(&p, &r).score_matrix(&r).is_none());
        // Intersection aggregation is not materialized.
        let r2 = example2_rel();
        let p = lowest("A1").intersect(highest("A1")).unwrap();
        assert!(compile(&p, &r2).score_matrix(&r2).is_none());
    }

    #[test]
    fn explicit_materializes_via_reachability_bitsets() {
        // Example 1's EXPLICIT graph over a column with in-graph, outside
        // and duplicate values: the matrix backend must agree pointwise
        // with the term walk and report itself as the EXPLICIT backend.
        let r = rel! {
            ("color": Str);
            ("white",), ("red",), ("yellow",), ("green",), ("brown",),
            ("black",), ("yellow",),
        };
        let e = crate::term::explicit(
            "color",
            [("green", "yellow"), ("green", "red"), ("yellow", "white")],
        )
        .unwrap();
        for p in [
            e.clone(),
            e.clone().dual(),
            e.clone().pareto(lowest("color").dual().dual()).dual(),
            e.clone().prior(crate::term::antichain(["color"])),
        ] {
            let c = compile(&p, &r);
            // The pareto case mixes EXPLICIT with a non-embeddable chain
            // (string LOWEST): the whole term must *not* materialize.
            match c.score_matrix(&r) {
                Some(m) => {
                    assert!(c.supports_matrix(&r));
                    assert!(m.explicit_backend(), "{p} should report the backend");
                    for x in 0..r.len() {
                        for y in 0..r.len() {
                            assert_eq!(
                                m.better(x, y),
                                c.better(r.row(x), r.row(y)),
                                "bitset backend diverged for {p} on rows {x}, {y}"
                            );
                        }
                    }
                }
                None => assert!(!c.supports_matrix(&r), "probe must mirror build for {p}"),
            }
        }
        // Pure-key matrices do not claim the EXPLICIT backend.
        let r2 = example2_rel();
        let m = compile(&lowest("A1"), &r2).score_matrix(&r2).unwrap();
        assert!(!m.explicit_backend());
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let r = example2_rel();
        let fp = |p: &Pref| compile(p, &r).fingerprint();

        // Recompilation and syntactic equality agree.
        assert_eq!(fp(&example2_pref()), fp(&example2_pref()));
        assert_eq!(
            fp(&lowest("A1").pareto(highest("A2"))),
            fp(&lowest("A1").pareto(highest("A2")))
        );

        // Structure, parameters, attributes, and operator all matter.
        let distinct = [
            lowest("A1"),
            lowest("A2"),
            highest("A1"),
            around("A1", 0),
            around("A1", 1),
            lowest("A1").dual(),
            lowest("A1").pareto(highest("A2")),
            highest("A2").pareto(lowest("A1")),
            lowest("A1").prior(highest("A2")),
            lowest("A1").intersect(highest("A1")).unwrap(),
            crate::term::antichain(["A1"]).prior(lowest("A2")),
            Pref::rank(CombineFn::sum(), vec![lowest("A1"), highest("A2")]).unwrap(),
            Pref::rank(CombineFn::min(), vec![lowest("A1"), highest("A2")]).unwrap(),
        ];
        let fps: Vec<u64> = distinct.iter().map(fp).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(
                    fps[i], fps[j],
                    "fingerprint collision between {} and {}",
                    distinct[i], distinct[j]
                );
            }
        }
    }

    #[test]
    fn score_matrix_on_empty_relation() {
        let r = rel! { ("a": Int); };
        let m = compile(&lowest("a"), &r).score_matrix(&r).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.shard_count(), 0);
    }

    #[test]
    fn sharded_layouts_agree_with_the_default_build() {
        let r = example2_rel();
        for p in [
            example2_pref(),
            around("A1", 0).prior(lowest("A2")),
            example2_pref().dual(),
            Pref::rank(CombineFn::sum(), vec![lowest("A1"), highest("A2")]).unwrap(),
        ] {
            let c = compile(&p, &r);
            let whole = c.score_matrix(&r).unwrap();
            assert_eq!(whole.shard_count(), 1, "7 rows fit one default shard");
            for (shard_rows, threads) in [(1, 1), (2, 1), (2, 3), (3, 2), (64, 4)] {
                let m = c.score_matrix_with(&r, threads, shard_rows).unwrap();
                let rounded: usize = shard_rows.next_power_of_two();
                assert_eq!(m.shard_rows(), rounded);
                assert_eq!(m.shard_count(), r.len().div_ceil(rounded));
                assert!(m.shard_generations().iter().all(|&g| g == r.generation()));
                for x in 0..r.len() {
                    for y in 0..r.len() {
                        assert_eq!(
                            m.better(x, y),
                            whole.better(x, y),
                            "sharded build diverged for {p} at shard_rows={shard_rows}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_rebuild_reuses_clean_shards_and_restamps_the_rest() {
        let r1 = rel! {
            ("A1": Int, "A2": Int);
            (1, 9), (2, 8), (3, 7), (4, 6), (5, 5), (6, 4),
        };
        let mut r2 = r1.clone();
        r2.push(pref_relation::Tuple::new(vec![
            Value::from(0),
            Value::from(0),
        ]))
        .unwrap();

        let p = lowest("A1").pareto(lowest("A2"));
        let c = compile(&p, &r1);
        let prev = c.score_matrix_with(&r1, 1, 2).unwrap();
        assert_eq!(prev.shard_count(), 3);
        let prev_gens = prev.shard_generations().to_vec();

        // Pure append: shards 0..3 reused (old stamps), tail shard new.
        let m = c
            .score_matrix_incremental(&r2, &prev, prev.len(), &[], 2)
            .unwrap();
        assert_eq!(m.len(), 7);
        assert_eq!(m.shard_count(), 4);
        assert_eq!(&m.shard_generations()[..3], &prev_gens[..]);
        assert_eq!(m.shard_generations()[3], r2.generation());
        let fresh = c.score_matrix_with(&r2, 1, 2).unwrap();
        for x in 0..7 {
            for y in 0..7 {
                assert_eq!(m.better(x, y), fresh.better(x, y));
            }
        }

        // Dirty row 2 lives in shard 1: only that shard restamps.
        let r3 = rel! {
            ("A1": Int, "A2": Int);
            (1, 9), (2, 8), (9, 9), (4, 6), (5, 5), (6, 4),
        };
        let m = c
            .score_matrix_incremental(&r3, &prev, prev.len(), &[2], 1)
            .unwrap();
        assert_eq!(m.shard_generations()[0], prev_gens[0]);
        assert_eq!(m.shard_generations()[1], r3.generation());
        assert_eq!(m.shard_generations()[2], prev_gens[2]);
        let fresh = c.score_matrix_with(&r3, 1, 2).unwrap();
        for x in 0..6 {
            for y in 0..6 {
                assert_eq!(m.better(x, y), fresh.better(x, y));
            }
        }

        // An incremental rebuild inherits `prev`'s shard layout: the full
        // leading shard is reused, the partial tail shard that grew is
        // rebuilt.
        let coarse = c.score_matrix_with(&r1, 1, 4).unwrap();
        let m = c
            .score_matrix_incremental(&r2, &coarse, coarse.len(), &[], 1)
            .unwrap();
        assert_eq!(m.shard_rows(), 4);
        assert_eq!(m.shard_count(), 2);
        assert_eq!(m.shard_generations()[0], coarse.shard_generations()[0]);
        assert_eq!(m.shard_generations()[1], r2.generation());

        // A prefix claim longer than the relation is refused outright.
        assert!(c
            .score_matrix_incremental(&r1, &m, m.len(), &[], 1)
            .is_none());
    }

    /// Eq-lane patching is where incremental correctness is subtle:
    /// `around` maps distinct values to *equal* dominance keys, so the
    /// Pareto equality test rides entirely on the patched fingerprint
    /// lane; string operands exercise the dictionary fallback that must
    /// re-encode in full.
    #[test]
    fn incremental_rebuild_patches_eq_lanes_consistently() {
        let check = |p: &Pref, prev_rel: &Relation, next: &Relation, dirty: &[u32]| {
            let c = compile(p, prev_rel);
            let prev = c.score_matrix_with(prev_rel, 1, 2).unwrap();
            let m = c
                .score_matrix_incremental(next, &prev, prev_rel.len(), dirty, 1)
                .unwrap();
            let fresh = c.score_matrix_with(next, 1, 2).unwrap();
            for x in 0..next.len() {
                for y in 0..next.len() {
                    assert_eq!(
                        m.better(x, y),
                        fresh.better(x, y),
                        "patched eq lanes diverged for {p} at ({x}, {y})"
                    );
                }
            }
        };

        // AROUND 5 sends 3 and 7 to the same key; only the fingerprint
        // lane separates them. The dirty row swaps 3 for its mirror 7.
        let r1 = rel! {
            ("A1": Int, "A2": Int);
            (3, 1), (7, 1), (5, 2), (9, 0), (1, 3),
        };
        let r2 = rel! {
            ("A1": Int, "A2": Int);
            (7, 1), (7, 1), (5, 2), (9, 0), (1, 3),
        };
        let p = around("A1", 5).pareto(lowest("A2"));
        check(&p, &r1, &r2, &[0]);

        // Append across the shard boundary: the appended row mirrors an
        // existing key, so its fingerprint must extend the reused lane.
        let mut r3 = r1.clone();
        r3.push(pref_relation::Tuple::new(vec![
            Value::from(7),
            Value::from(9),
        ]))
        .unwrap();
        check(&p, &r1, &r3, &[]);

        // String operands take the dictionary encoding (no row-pure
        // patching): a full re-encode must still agree with fresh.
        let s1 = rel! {
            ("A1": Str, "A2": Int);
            ("red", 1), ("blue", 2), ("red", 3), ("green", 0),
        };
        let s2 = rel! {
            ("A1": Str, "A2": Int);
            ("red", 1), ("cyan", 2), ("red", 3), ("green", 0),
        };
        let p = crate::term::pos("A1", ["red", "green"]).pareto(lowest("A2"));
        check(&p, &s1, &s2, &[1]);
    }

    #[test]
    fn pareto_access_gathers_matrix_and_window_rows() {
        let r = example2_rel();
        let c = compile(&example2_pref(), &r);
        let m = Arc::new(c.score_matrix_with(&r, 1, 2).unwrap());
        let acc = Dominance::pareto_access(&*m).expect("flat Pareto exposes lanes");
        assert_eq!(acc.dims(), 3);
        assert_eq!(acc.len(), r.len());

        // Reconstruct `better` from gathered lanes and cross-check.
        let gathered_better = |acc: &ParetoAccess<'_>, x: usize, y: usize| {
            let d = acc.dims();
            let (mut kx, mut ky) = (vec![0.0; d], vec![0.0; d]);
            let (mut ex, mut ey) = (vec![0u64; d], vec![0u64; d]);
            acc.gather(x, &mut kx, &mut ex);
            acc.gather(y, &mut ky, &mut ey);
            let mut any_strict = false;
            for i in 0..d {
                if kx[i] < ky[i] {
                    any_strict = true;
                } else if ex[i] != ey[i] {
                    return false;
                }
            }
            any_strict
        };
        for x in 0..r.len() {
            for y in 0..r.len() {
                assert_eq!(gathered_better(&acc, x, y), m.better(x, y));
            }
        }

        // Windowed access crosses shard boundaries through the ids map.
        let ids: Arc<[u32]> = Arc::from(vec![6u32, 0, 3].as_slice());
        let w = MatrixWindow::windowed(Arc::clone(&m), ids);
        let wacc = Dominance::pareto_access(&w).unwrap();
        assert_eq!(wacc.len(), 3);
        for x in 0..3 {
            for y in 0..3 {
                assert_eq!(gathered_better(&wacc, x, y), w.better(x, y));
            }
        }

        // Non-flat plans expose no lanes.
        let prior = compile(&lowest("A1").prior(lowest("A2")), &r);
        let pm = prior.score_matrix(&r).unwrap();
        assert!(Dominance::pareto_access(&pm).is_none());
    }

    #[test]
    fn pareto_utility_is_monotone() {
        let r = example2_rel();
        let p = example2_pref();
        let c = compile(&p, &r);
        for x in r.iter() {
            for y in r.iter() {
                if c.better(x, y) {
                    assert!(c.utility(x).unwrap() < c.utility(y).unwrap());
                }
            }
        }
    }
}
