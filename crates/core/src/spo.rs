//! Strict-partial-order checking (Def. 1).
//!
//! Proposition 1 states that every preference term defines a strict partial
//! order. Rather than trusting the implementation, the test suites call
//! these checkers on finite domain samples: irreflexivity and transitivity
//! are verified exhaustively (asymmetry follows from the two, and is
//! checked anyway to catch implementation bugs directly).

use std::fmt;

/// A witnessed violation of the strict-partial-order axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoViolation {
    /// `x < x` held for index `x`.
    Irreflexivity { x: usize },
    /// `x < y` and `y < x` both held.
    Asymmetry { x: usize, y: usize },
    /// `x < y` and `y < z` held but `x < z` did not.
    Transitivity { x: usize, y: usize, z: usize },
}

impl fmt::Display for SpoViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpoViolation::Irreflexivity { x } => write!(f, "irreflexivity violated at item {x}"),
            SpoViolation::Asymmetry { x, y } => {
                write!(f, "asymmetry violated between items {x} and {y}")
            }
            SpoViolation::Transitivity { x, y, z } => {
                write!(f, "transitivity violated on items {x} < {y} < {z}")
            }
        }
    }
}

impl std::error::Error for SpoViolation {}

/// Exhaustively check the SPO axioms for `better` over `n` items.
///
/// `better(x, y)` must mean `x <P y` ("y is better"). O(n³) — intended
/// for test domains.
pub fn check_spo(n: usize, better: impl Fn(usize, usize) -> bool) -> Result<(), SpoViolation> {
    // Materialise the relation once so the closure is not re-evaluated
    // O(n³) times.
    let mut rel = vec![false; n * n];
    for x in 0..n {
        for y in 0..n {
            rel[x * n + y] = better(x, y);
        }
    }
    for x in 0..n {
        if rel[x * n + x] {
            return Err(SpoViolation::Irreflexivity { x });
        }
    }
    for x in 0..n {
        for y in 0..n {
            if rel[x * n + y] && rel[y * n + x] {
                return Err(SpoViolation::Asymmetry { x, y });
            }
        }
    }
    for x in 0..n {
        for y in 0..n {
            if !rel[x * n + y] {
                continue;
            }
            for z in 0..n {
                if rel[y * n + z] && !rel[x * n + z] {
                    return Err(SpoViolation::Transitivity { x, y, z });
                }
            }
        }
    }
    Ok(())
}

/// Check the SPO axioms of a base preference over a sample of values.
pub fn check_spo_values(
    pref: &dyn crate::base::BasePreference,
    domain: &[pref_relation::Value],
) -> Result<(), SpoViolation> {
    check_spo(domain.len(), |x, y| pref.better(&domain[x], &domain[y]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_chain() {
        // 0 < 1 < 2 with full transitivity
        check_spo(3, |x, y| x < y).unwrap();
    }

    #[test]
    fn accepts_the_empty_order() {
        check_spo(4, |_, _| false).unwrap();
        check_spo(0, |_, _| true).unwrap();
    }

    #[test]
    fn rejects_reflexive() {
        assert_eq!(
            check_spo(2, |x, y| x == y),
            Err(SpoViolation::Irreflexivity { x: 0 })
        );
    }

    #[test]
    fn rejects_symmetric() {
        assert_eq!(
            check_spo(2, |x, y| x != y),
            Err(SpoViolation::Asymmetry { x: 0, y: 1 })
        );
    }

    #[test]
    fn rejects_intransitive() {
        // successor relation without closure: 0<1, 1<2, but not 0<2
        assert_eq!(
            check_spo(3, |x, y| y == x + 1),
            Err(SpoViolation::Transitivity { x: 0, y: 1, z: 2 })
        );
    }

    #[test]
    fn violations_display() {
        let v = SpoViolation::Transitivity { x: 0, y: 1, z: 2 };
        assert!(v.to_string().contains("transitivity"));
    }
}
