//! Base preferences: strict partial orders on a single attribute's domain.
//!
//! The paper distinguishes *non-numerical* base preference constructors
//! (POS, NEG, POS/NEG, POS/POS, EXPLICIT — Def. 6) from *numerical* ones
//! (AROUND, BETWEEN, LOWEST, HIGHEST, SCORE — Def. 7). All of them
//! instantiate the [`BasePreference`] trait below; user code can add new
//! base constructors by implementing the same trait ("both the set of base
//! preferences and the set of complex preference constructors can be
//! enlarged", §3.1).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use pref_relation::Value;

pub mod around;
pub mod between;
pub mod combinators;
pub mod explicit;
pub mod extremal;
pub mod layered;
pub mod neg;
pub mod pos;
pub mod pos_neg;
pub mod pos_pos;
pub mod score;

pub use around::Around;
pub use between::Between;
pub use combinators::{AntichainBase, DualBase, InterBase, LinearSum, SubsetBase, UnionBase};
pub use explicit::{Explicit, Reachability};
pub use extremal::{Highest, Lowest};
pub use layered::Layered;
pub use neg::Neg;
pub use pos::Pos;
pub use pos_neg::PosNeg;
pub use pos_pos::PosPos;
pub use score::Score;

/// The finite part of `range(<P)` (Def. 4), used to validate disjoint
/// unions. `Known(s)` means `range(<P) ⊆ s` holds exactly; `Unbounded`
/// means the range covers (an unknown, typically infinite, part of) the
/// domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Range {
    Known(HashSet<Value>),
    Unbounded,
}

impl Range {
    /// Are two ranges certainly disjoint? `None` = cannot tell.
    pub fn disjoint_with(&self, other: &Range) -> Option<bool> {
        match (self, other) {
            (Range::Known(a), Range::Known(b)) => Some(a.is_disjoint(b)),
            _ => None,
        }
    }

    /// A witness value in the intersection, when both ranges are known.
    pub fn overlap_witness(&self, other: &Range) -> Option<Value> {
        match (self, other) {
            (Range::Known(a), Range::Known(b)) => a.intersection(b).next().cloned(),
            _ => None,
        }
    }
}

/// A strict partial order on the values of one attribute.
///
/// Implementations must guarantee irreflexivity and transitivity of
/// [`BasePreference::better`] (Def. 1); `pref_core::spo` machine-checks
/// this for every constructor in the test suite.
pub trait BasePreference: fmt::Debug + Send + Sync {
    /// Constructor name as the paper writes it, e.g. `"POS"`, `"AROUND"`.
    fn name(&self) -> &'static str;

    /// Strict better-than test: is `y` better than `x` (i.e. `x <P y`)?
    fn better(&self, x: &Value, y: &Value) -> bool;

    /// Discrete quality level, 1 = best (Def. 2 / Def. 6). `None` when the
    /// constructor uses a continuous quality notion instead.
    fn level(&self, _v: &Value) -> Option<u32> {
        None
    }

    /// Numerical score, higher = better. `Some` for the SCORE family
    /// (AROUND, BETWEEN, LOWEST, HIGHEST, SCORE), which makes the
    /// preference usable as a `rank(F)` operand (Def. 10, §3.4).
    fn score(&self, _v: &Value) -> Option<f64> {
        None
    }

    /// The DISTANCE quality function of Preference SQL (§6.1): distance 0
    /// is a perfect match. `Some` for AROUND and BETWEEN.
    fn distance(&self, _v: &Value) -> Option<f64> {
        None
    }

    /// Does this constructor belong to the SCORE family? Governs
    /// constructor substitutability into `rank(F)`.
    fn is_numerical(&self) -> bool {
        false
    }

    /// A total-preorder embedding of this order, when one exists:
    /// `Some(k)` for every domain value with the *exact* guarantee
    /// `better(x, y) ⟺ key(x) < key(y)` (higher key = better).
    ///
    /// This is stronger than [`BasePreference::score`] (which only needs
    /// `better ⟹ <`) and is what lets the score-matrix evaluator replace
    /// term-tree walks by plain `f64` comparisons. Constructors whose
    /// order is not a total preorder on some values (EXPLICIT's genuine
    /// partial orders, the combinator bases) return `None` — per value,
    /// so materialization can bail out and fall back to the generic
    /// path the moment a non-embeddable value shows up.
    fn dominance_key(&self, _v: &Value) -> Option<f64> {
        None
    }

    /// Recover the LEVEL quality of a value from its
    /// [`BasePreference::dominance_key`], when the two are in exact
    /// correspondence (`level(v) = level_from_key(dominance_key(v))` for
    /// every value with a key). Lets quality supervision (`BUT ONLY`)
    /// read materialized score matrices instead of re-walking values;
    /// `None` when the constructor has no discrete levels or the key
    /// does not determine them.
    fn level_from_key(&self, _key: f64) -> Option<u32> {
        None
    }

    /// Recover the DISTANCE quality from the
    /// [`BasePreference::dominance_key`] — the same contract as
    /// [`BasePreference::level_from_key`], for the continuous quality
    /// notion of AROUND/BETWEEN (which embed as negated distance).
    fn distance_from_key(&self, _key: f64) -> Option<f64> {
        None
    }

    /// Is `v` in `max(P)` over the *whole domain* (a "dream value",
    /// Def. 14b)? `Some(false)` when certainly not (e.g. any value under
    /// HIGHEST on an unbounded domain), `None` when unknown. Drives
    /// perfect-match detection in BMO queries.
    fn is_top(&self, _v: &Value) -> Option<bool> {
        None
    }

    /// Downcast hook for the one base constructor with a materializable
    /// *partial* order: EXPLICIT graphs expose their vertex index and
    /// reachability bitset here, which lets the score-matrix evaluator
    /// resolve values to vertex ids once per relation instead of walking
    /// the term per comparison. Everything else stays `None`.
    fn as_explicit(&self) -> Option<&Explicit> {
        None
    }

    /// Downcast hook for parameterized base-preference *shapes*
    /// ([`crate::param::ParamBase`]): the bind machinery
    /// ([`crate::term::Pref::bind_params`],
    /// [`crate::eval::CompiledPref::bind`]) uses it to find and patch
    /// slot-bearing leaves. Concrete constructors stay `None`.
    fn as_param(&self) -> Option<&crate::param::ParamBase> {
        None
    }

    /// Is the order total on the attribute's domain (a chain, Def. 3a)?
    /// Used by the optimizer (Prop. 11 cascades apply only to chains).
    fn is_chain(&self) -> bool {
        false
    }

    /// `range(<P)` per Def. 4, as precisely as this constructor knows it.
    fn range(&self) -> Range {
        Range::Unbounded
    }

    /// Parameter part of the display form, e.g. `{'yellow'}; {'gray'}`.
    /// Empty for parameterless constructors such as LOWEST.
    fn params(&self) -> String {
        String::new()
    }
}

/// Shared handle to a base preference.
pub type BaseRef = Arc<dyn BasePreference>;

/// Equality of base preferences for the *syntactic* term equality used by
/// rewrite rules (`P ⊗ P ≡ P` needs to recognise "the same P"). Two base
/// preferences are considered identical when constructor name and printed
/// parameters coincide. Custom `SCORE` functions must therefore carry
/// distinct names if they differ.
pub fn base_eq(a: &BaseRef, b: &BaseRef) -> bool {
    Arc::ptr_eq(a, b) || (a.name() == b.name() && a.params() == b.params())
}

/// Render a set of values in paper notation: `{'green', 'yellow'}` with a
/// canonical (sorted) element order.
pub(crate) fn fmt_value_set(set: &HashSet<Value>) -> String {
    let mut items: Vec<&Value> = set.iter().collect();
    items.sort();
    let body: Vec<String> = items.iter().map(|v| v.to_string()).collect();
    format!("{{{}}}", body.join(", "))
}

/// Compare two values on the shared ordered axis used by the numerical
/// constructors: numbers (and dates, via day number) compare numerically;
/// equal-typed other values compare by their natural order; mixed
/// non-ordinal types are incomparable.
pub(crate) fn ordinal_cmp(x: &Value, y: &Value) -> Option<std::cmp::Ordering> {
    match (x.ordinal(), y.ordinal()) {
        (Some(a), Some(b)) => Some(a.total_cmp(&b)),
        (None, None) if !x.is_null() && !y.is_null() => {
            if std::mem::discriminant(x) == std::mem::discriminant(y) {
                Some(x.cmp(y))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn range_disjointness() {
        let a = Range::Known([Value::from(1)].into_iter().collect());
        let b = Range::Known([Value::from(2)].into_iter().collect());
        let c = Range::Known([Value::from(1), Value::from(3)].into_iter().collect());
        assert_eq!(a.disjoint_with(&b), Some(true));
        assert_eq!(a.disjoint_with(&c), Some(false));
        assert_eq!(a.overlap_witness(&c), Some(Value::from(1)));
        assert_eq!(a.disjoint_with(&Range::Unbounded), None);
    }

    #[test]
    fn fmt_value_set_is_canonical() {
        let s: HashSet<Value> = [Value::from("b"), Value::from("a")].into_iter().collect();
        assert_eq!(fmt_value_set(&s), "{'a', 'b'}");
    }

    #[test]
    fn ordinal_cmp_covers_mixed_numerics() {
        assert_eq!(
            ordinal_cmp(&Value::from(1), &Value::from(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            ordinal_cmp(&Value::from("a"), &Value::from("b")),
            Some(Ordering::Less)
        );
        assert_eq!(ordinal_cmp(&Value::from("a"), &Value::from(1)), None);
        assert_eq!(ordinal_cmp(&Value::Null, &Value::from(1)), None);
    }

    #[test]
    fn base_eq_by_name_and_params() {
        let p1: BaseRef = Arc::new(Pos::new(["yellow"]));
        let p2: BaseRef = Arc::new(Pos::new(["yellow"]));
        let p3: BaseRef = Arc::new(Pos::new(["green"]));
        assert!(base_eq(&p1, &p2));
        assert!(!base_eq(&p1, &p3));
    }
}
