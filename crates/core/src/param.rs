//! Parameterized preference shapes: terms whose base-preference
//! constructors hold `$n` **slots** alongside concrete values.
//!
//! Kießling's framework treats a preference query as a fixed term shape
//! over varying constants — exactly the workload a prepared-statement
//! engine sees when the same `PREFERRING price AROUND $1` runs with a
//! different binding per request. A [`ParamBase`] is a base-preference
//! *shape*: it prints and fingerprints like the constructor it stands
//! for (with `$n` in the parameter positions), participates in term
//! algebra as an ordinary [`Pref::Base`](crate::term::Pref) leaf, and
//! [instantiates](ParamSpec::instantiate) into the concrete constructor
//! once values are bound.
//!
//! Binding never re-walks an AST or re-resolves attributes: the shape is
//! compiled once ([`crate::eval::CompiledPref`]), and
//! [`CompiledPref::bind`](crate::eval::CompiledPref::bind) patches the
//! slot-bearing nodes in place, preserving every resolved column index
//! and equality-projection layout.
//!
//! As a *preference*, an unbound shape denotes the empty order (nothing
//! is better than anything) — a valid strict partial order, so shapes
//! flow through the algebra and the optimizer without special cases;
//! evaluating one without binding is a caller error the query layer
//! rejects up front.

use std::fmt;
use std::sync::Arc;

use pref_relation::Value;

use crate::base::{Around, BasePreference, BaseRef, Range};
use crate::error::CoreError;

/// A parameter position in a shape: either a concrete value fixed at
/// prepare time or a 1-based `$n` slot filled at bind time.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotValue {
    /// A constant, fixed when the shape was built.
    Const(Value),
    /// `$n` (1-based), resolved against the binding's `values[n - 1]`.
    Slot(usize),
}

impl SlotValue {
    /// Resolve against a binding. `Const` ignores `values`; `Slot(n)`
    /// reads `values[n - 1]` and fails with
    /// [`CoreError::UnboundSlot`] when the binding is too short.
    pub fn resolve<'a>(&'a self, values: &'a [Value]) -> Result<&'a Value, CoreError> {
        match self {
            SlotValue::Const(v) => Ok(v),
            SlotValue::Slot(n) => values
                .get(n.checked_sub(1).ok_or(CoreError::UnboundSlot { slot: 0 })?)
                .ok_or(CoreError::UnboundSlot { slot: *n }),
        }
    }

    /// The slot index, if this is a slot.
    pub fn slot(&self) -> Option<usize> {
        match self {
            SlotValue::Const(_) => None,
            SlotValue::Slot(n) => Some(*n),
        }
    }
}

impl fmt::Display for SlotValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotValue::Const(v) => write!(f, "{v}"),
            SlotValue::Slot(n) => write!(f, "${n}"),
        }
    }
}

/// A parameterized base-preference constructor: how a slot-bearing shape
/// prints, which slots it reads, and how it instantiates into a concrete
/// [`BasePreference`] once values are bound.
///
/// Implementations own any value coercion (the SQL layer coerces bound
/// values against the column type here); a value that cannot stand in
/// for the slot surfaces as [`CoreError::BadBinding`].
pub trait ParamSpec: fmt::Debug + Send + Sync {
    /// Constructor name as the paper writes it (`"AROUND"`, `"POS"`, …) —
    /// the name of the *instantiated* constructor, so shape fingerprints
    /// and concrete fingerprints share a namespace but never collide
    /// (the shape's parameter rendering contains `$n`).
    fn ctor_name(&self) -> &'static str;

    /// Parameter rendering with `$n` in the slot positions — the shape
    /// half of the fingerprint, stable across bindings.
    fn shape_params(&self) -> String;

    /// Will the instantiated constructor belong to the SCORE family
    /// ([`BasePreference::is_numerical`])? Governs whether the shape may
    /// stand in a `rank(F)` operand position before binding.
    fn numerical_hint(&self) -> bool {
        false
    }

    /// Append every slot index this shape reads (1-based, duplicates
    /// allowed) to `out`.
    fn collect_slots(&self, out: &mut Vec<usize>);

    /// Build the concrete base preference for a binding
    /// (`values[0] = $1`). Fails with [`CoreError::UnboundSlot`] when
    /// the binding is too short and [`CoreError::BadBinding`] when a
    /// value cannot inhabit its slot.
    fn instantiate(&self, values: &[Value]) -> Result<BaseRef, CoreError>;
}

/// A base-preference *shape* — the [`BasePreference`] wrapper around a
/// [`ParamSpec`] that lets parameterized terms flow through the algebra,
/// the compiler and the fingerprint machinery as ordinary base leaves.
///
/// The order it denotes while unbound is empty (`better` is constantly
/// false): shapes are placeholders, not preferences to evaluate, and the
/// query layer refuses to execute an unbound one.
#[derive(Debug, Clone)]
pub struct ParamBase {
    spec: Arc<dyn ParamSpec>,
}

impl ParamBase {
    /// Wrap a parameter spec.
    pub fn new(spec: impl ParamSpec + 'static) -> Self {
        ParamBase {
            spec: Arc::new(spec),
        }
    }

    /// Wrap a shared parameter spec handle.
    pub fn from_spec(spec: Arc<dyn ParamSpec>) -> Self {
        ParamBase { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &Arc<dyn ParamSpec> {
        &self.spec
    }

    /// The slot indices this shape reads (sorted, deduplicated).
    pub fn slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.spec.collect_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Instantiate the concrete base preference for a binding.
    pub fn instantiate(&self, values: &[Value]) -> Result<BaseRef, CoreError> {
        self.spec.instantiate(values)
    }
}

impl BasePreference for ParamBase {
    fn name(&self) -> &'static str {
        self.spec.ctor_name()
    }

    // An unbound shape ranks nothing: the empty order is a strict
    // partial order, so shapes compose under every constructor.
    fn better(&self, _x: &Value, _y: &Value) -> bool {
        false
    }

    fn is_numerical(&self) -> bool {
        self.spec.numerical_hint()
    }

    fn range(&self) -> Range {
        Range::Unbounded
    }

    fn params(&self) -> String {
        self.spec.shape_params()
    }

    fn as_param(&self) -> Option<&ParamBase> {
        Some(self)
    }
}

/// The canonical core-level shape: `AROUND(A; $n)` with the target
/// supplied at bind time. Richer shapes (typed against a schema, mixing
/// constants and slots in value sets) live in the SQL layer; this one
/// exists so engine-level callers and tests can exercise the bind path
/// without a SQL front end.
#[derive(Debug, Clone)]
pub struct AroundSlot {
    slot: usize,
}

impl AroundSlot {
    /// `AROUND(·; $slot)` (1-based).
    pub fn new(slot: usize) -> Self {
        assert!(slot >= 1, "slots are 1-based, like $n placeholders");
        AroundSlot { slot }
    }
}

impl ParamSpec for AroundSlot {
    fn ctor_name(&self) -> &'static str {
        "AROUND"
    }

    fn shape_params(&self) -> String {
        format!("${}", self.slot)
    }

    fn numerical_hint(&self) -> bool {
        true
    }

    fn collect_slots(&self, out: &mut Vec<usize>) {
        out.push(self.slot);
    }

    fn instantiate(&self, values: &[Value]) -> Result<BaseRef, CoreError> {
        let v = values
            .get(self.slot - 1)
            .ok_or(CoreError::UnboundSlot { slot: self.slot })?;
        if v.ordinal().is_none() {
            return Err(CoreError::BadBinding {
                slot: self.slot,
                value: v.to_string(),
                expected: "a numeric or date AROUND target".to_string(),
            });
        }
        Ok(Arc::new(Around::new(v.clone())))
    }
}

/// `AROUND(attr; $slot)` as a term — the parameterized counterpart of
/// [`crate::term::around`].
pub fn around_slot(attr: impl Into<pref_relation::Attr>, slot: usize) -> crate::term::Pref {
    crate::term::Pref::base(attr, ParamBase::new(AroundSlot::new(slot)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{around, lowest, Pref};
    use pref_relation::{rel, Schema};

    #[test]
    fn shapes_print_and_fingerprint_with_slots() {
        let p = around_slot("price", 1);
        assert_eq!(p.to_string(), "AROUND(price; $1)");
        assert!(p.has_params());
        assert_eq!(p.param_slots(), vec![1]);
        assert!(!around("price", 4).has_params());
    }

    #[test]
    fn shape_equality_is_by_slot() {
        assert_eq!(around_slot("a", 1), around_slot("a", 1));
        assert_ne!(around_slot("a", 1), around_slot("a", 2));
        assert_ne!(around_slot("a", 1), around("a", 1));
    }

    #[test]
    fn unbound_shapes_denote_the_empty_order() {
        let shape = ParamBase::new(AroundSlot::new(1));
        assert!(!shape.better(&Value::from(1), &Value::from(2)));
        assert!(!shape.better(&Value::from(2), &Value::from(1)));
    }

    #[test]
    fn term_binding_patches_slots_only() {
        let schema = Schema::new(vec![
            ("price", pref_relation::DataType::Int),
            ("mileage", pref_relation::DataType::Int),
        ])
        .unwrap();
        let shape = around_slot("price", 1).pareto(lowest("mileage"));
        let bound = shape.bind_params(&[Value::from(40_000)]).unwrap();
        assert!(!bound.has_params());
        assert_eq!(bound, around("price", 40_000).pareto(lowest("mileage")));

        // Binding agrees with a fresh compile: same fingerprint.
        let from_shape = crate::eval::CompiledPref::compile(&shape, &schema)
            .unwrap()
            .bind(&[Value::from(40_000)])
            .unwrap();
        let fresh = crate::eval::CompiledPref::compile(&bound, &schema).unwrap();
        assert_eq!(from_shape.fingerprint(), fresh.fingerprint());
        assert!(!from_shape.has_params());
    }

    #[test]
    fn bind_errors_name_the_slot() {
        let shape = around_slot("price", 2);
        assert!(matches!(
            shape.bind_params(&[Value::from(1)]),
            Err(CoreError::UnboundSlot { slot: 2 })
        ));
        assert!(matches!(
            shape.bind_params(&[Value::from(1), Value::from("nope")]),
            Err(CoreError::BadBinding { slot: 2, .. })
        ));
    }

    #[test]
    fn bound_shapes_evaluate_like_their_concrete_twins() {
        let r = rel! { ("price": Int); (38_000,), (45_000,), (44_000,) };
        let shape = around_slot("price", 1);
        for target in [40_000i64, 45_000] {
            let bound = shape.bind_params(&[Value::from(target)]).unwrap();
            let concrete = around("price", target);
            let cb = crate::eval::CompiledPref::compile(&bound, r.schema()).unwrap();
            let cc = crate::eval::CompiledPref::compile(&concrete, r.schema()).unwrap();
            for x in 0..r.len() {
                for y in 0..r.len() {
                    assert_eq!(cb.better(r.row(x), r.row(y)), cc.better(r.row(x), r.row(y)));
                }
            }
        }
    }

    #[test]
    fn rank_shapes_bind_too() {
        let shape = Pref::rank(
            crate::term::CombineFn::sum(),
            vec![around_slot("a", 1), around("b", 0)],
        )
        .unwrap();
        assert!(shape.has_params());
        let bound = shape.bind_params(&[Value::from(3)]).unwrap();
        assert_eq!(
            bound,
            Pref::rank(
                crate::term::CombineFn::sum(),
                vec![around("a", 3), around("b", 0)]
            )
            .unwrap()
        );
    }
}
