//! The preference algebra (Section 4): equivalence of preference terms,
//! the law collection of Propositions 2–6, a rewrite engine applying the
//! laws, and the sub-constructor hierarchies of §3.4.

pub mod equiv;
pub mod hierarchy;
pub mod laws;
pub mod rewrite;

pub use equiv::{equivalent_on, equivalent_values};
pub use rewrite::{simplify, simplify_traced, RewriteStep};
