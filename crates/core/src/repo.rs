//! A persistent preference repository — the first stop on the paper's §7
//! roadmap ("Our roadmap into a 'Preference World' includes … a
//! persistent preference repository, personalized query composition
//! methods …").
//!
//! Named preference terms are stored in their paper-notation text form
//! (see [`crate::text`]) so repositories are human-readable, diffable
//! and survive process restarts. Entries can reference earlier entries
//! with `$name`, which enables the paper's *personalized query
//! composition*: Julia stores her base wishes once and composes `Q1`
//! from them.
//!
//! ```text
//! # Julia's wishes (Example 6)
//! category     = POS/POS(category; {'cabriolet'}; {'roadster'})
//! transmission = POS(transmission; {'automatic'})
//! power        = AROUND(horsepower; 100)
//! budget       = LOWEST(price)
//! color        = NEG(color; {'gray'})
//! q1           = ($color & (($category ⊗ $transmission ⊗ $power) & $budget))
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::term::Pref;
use crate::text::{parse_term_with, FnRegistry, TextError};

/// Errors raised by repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// A `$reference` names an entry that does not exist (yet).
    UnknownReference { entry: String, reference: String },
    /// A line is not `name = term`.
    BadLine { line: usize, content: String },
    /// An entry name is declared twice.
    DuplicateEntry(String),
    /// Term parse failure inside an entry.
    Text { entry: String, source: TextError },
    /// File I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::UnknownReference { entry, reference } => {
                write!(
                    f,
                    "entry `{entry}` references unknown preference `${reference}`"
                )
            }
            RepoError::BadLine { line, content } => {
                write!(f, "line {line} is not `name = term`: {content}")
            }
            RepoError::DuplicateEntry(name) => write!(f, "duplicate entry `{name}`"),
            RepoError::Text { entry, source } => write!(f, "entry `{entry}`: {source}"),
            RepoError::Io(e) => write!(f, "repository I/O: {e}"),
        }
    }
}

impl std::error::Error for RepoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepoError::Text { source, .. } => Some(source),
            RepoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RepoError {
    fn from(e: std::io::Error) -> Self {
        RepoError::Io(e)
    }
}

/// A named store of preference terms.
#[derive(Debug, Default)]
pub struct Repository {
    entries: BTreeMap<String, Pref>,
    registry: FnRegistry,
}

impl Repository {
    /// Empty repository with the built-in function registry.
    pub fn new() -> Self {
        Repository {
            entries: BTreeMap::new(),
            registry: FnRegistry::builtin(),
        }
    }

    /// Use a custom function registry (for SCORE / rank(F) terms).
    pub fn with_registry(registry: FnRegistry) -> Self {
        Repository {
            entries: BTreeMap::new(),
            registry,
        }
    }

    /// Insert or replace a named preference.
    pub fn insert(&mut self, name: impl Into<String>, pref: Pref) {
        self.entries.insert(name.into(), pref);
    }

    /// Look up a preference by name.
    pub fn get(&self, name: &str) -> Option<&Pref> {
        self.entries.get(name)
    }

    /// Entry names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the repository empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialise to the text form (`name = term` lines, sorted by name).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, pref) in &self.entries {
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&pref.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a repository from its text form. Lines are `name = term`;
    /// blank lines and `#` comments are skipped; `$name` inside a term
    /// splices a previously defined entry (textual substitution of its
    /// parenthesised form, so composition is capture-free).
    pub fn from_text(text: &str) -> Result<Self, RepoError> {
        Repository::from_text_with(text, FnRegistry::builtin())
    }

    /// Parse with a custom function registry.
    pub fn from_text_with(text: &str, registry: FnRegistry) -> Result<Self, RepoError> {
        let mut repo = Repository::with_registry(registry);
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, body)) = line.split_once('=') else {
                return Err(RepoError::BadLine {
                    line: i + 1,
                    content: raw.to_string(),
                });
            };
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(RepoError::BadLine {
                    line: i + 1,
                    content: raw.to_string(),
                });
            }
            if repo.entries.contains_key(name) {
                return Err(RepoError::DuplicateEntry(name.to_string()));
            }
            let expanded = repo.expand_refs(name, body.trim())?;
            let pref =
                parse_term_with(&expanded, &repo.registry).map_err(|source| RepoError::Text {
                    entry: name.to_string(),
                    source,
                })?;
            repo.entries.insert(name.to_string(), pref);
        }
        Ok(repo)
    }

    /// Replace `$name` references by the entry's printed term.
    fn expand_refs(&self, entry: &str, body: &str) -> Result<String, RepoError> {
        let mut out = String::with_capacity(body.len());
        let mut chars = body.char_indices().peekable();
        while let Some((_, c)) = chars.next() {
            if c != '$' {
                out.push(c);
                continue;
            }
            let mut name = String::new();
            while let Some(&(_, n)) = chars.peek() {
                if n.is_alphanumeric() || n == '_' || n == '-' {
                    name.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            let referenced =
                self.entries
                    .get(&name)
                    .ok_or_else(|| RepoError::UnknownReference {
                        entry: entry.to_string(),
                        reference: name.clone(),
                    })?;
            // Splice the printed form; compounds are already
            // parenthesised by Display, so precedence is preserved.
            out.push_str(&referenced.to_string());
        }
        Ok(out)
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), RepoError> {
        Ok(std::fs::write(path, self.to_text())?)
    }

    /// Load from a file with the built-in registry.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, RepoError> {
        Repository::from_text(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{around, highest, lowest, neg, pos, pos_pos};

    fn julia() -> Repository {
        let mut repo = Repository::new();
        repo.insert(
            "category",
            pos_pos("category", ["cabriolet"], ["roadster"]).unwrap(),
        );
        repo.insert("transmission", pos("transmission", ["automatic"]));
        repo.insert("power", around("horsepower", 100));
        repo.insert("budget", lowest("price"));
        repo.insert("color", neg("color", ["gray"]));
        repo
    }

    #[test]
    fn roundtrip_through_text() {
        let repo = julia();
        let text = repo.to_text();
        let loaded = Repository::from_text(&text).unwrap();
        assert_eq!(loaded.len(), repo.len());
        for name in repo.names() {
            assert_eq!(loaded.get(name), repo.get(name), "entry `{name}`");
        }
    }

    #[test]
    fn references_compose_queries() {
        let mut text = julia().to_text();
        text.push_str("q1 = ($color & (($category ⊗ $transmission ⊗ $power) & $budget))\n");
        let repo = Repository::from_text(&text).unwrap();
        let q1 = repo.get("q1").expect("q1 defined");
        // Same term as building Example 6's Q1 directly.
        let direct = neg("color", ["gray"]).prior(
            pos_pos("category", ["cabriolet"], ["roadster"])
                .unwrap()
                .pareto(pos("transmission", ["automatic"]))
                .pareto(around("horsepower", 100))
                .prior(lowest("price")),
        );
        assert_eq!(q1, &direct);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# Julia's wishes\n\nbudget = LOWEST(price)\n";
        let repo = Repository::from_text(text).unwrap();
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get("budget"), Some(&lowest("price")));
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            Repository::from_text("q1 = $nope"),
            Err(RepoError::UnknownReference { .. })
        ));
        assert!(matches!(
            Repository::from_text("not a line"),
            Err(RepoError::BadLine { .. })
        ));
        assert!(matches!(
            Repository::from_text("a = LOWEST(x)\na = HIGHEST(x)"),
            Err(RepoError::DuplicateEntry(_))
        ));
        assert!(matches!(
            Repository::from_text("a = BOGUS(x)"),
            Err(RepoError::Text { .. })
        ));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("pref-repo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("julia.prefs");
        let mut repo = julia();
        repo.insert("vendor", highest("commission"));
        repo.save(&path).unwrap();
        let loaded = Repository::load(&path).unwrap();
        assert_eq!(loaded.len(), 6);
        assert_eq!(loaded.get("vendor"), Some(&highest("commission")));
        std::fs::remove_file(&path).ok();
    }
}
