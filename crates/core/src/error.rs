//! Error type for preference construction and compilation.

use std::fmt;

use pref_relation::{Attr, RelationError, Value};

/// Errors raised while constructing or compiling preference terms.
///
/// Note what is *not* an error: conflicting preferences. Desideratum (4) of
/// the paper requires that "conflicts of preferences must not cause a system
/// failure" — composing contradictory preferences yields unranked values,
/// never an `Err`.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// An attribute used by a preference is missing from the query schema.
    UnknownAttr(Attr),
    /// POS/NEG or POS1/POS2 sets must be disjoint (Def. 6c/6d).
    OverlappingSets {
        constructor: &'static str,
        witness: Value,
    },
    /// The EXPLICIT better-than graph must be acyclic (Def. 6e).
    CyclicExplicit { on_cycle: Value },
    /// BETWEEN requires `low <= up` (Def. 7b).
    EmptyInterval { low: Value, up: Value },
    /// rank(F) applies only to SCORE-family preferences (Def. 10),
    /// possibly supplied via constructor substitutability (§3.4).
    NotScorable { term: String },
    /// rank(F) and the accumulation constructors need at least one operand.
    EmptyCombination { constructor: &'static str },
    /// Intersection / disjoint union require identical attribute sets (Def. 11).
    AttrSetMismatch {
        constructor: &'static str,
        left: String,
        right: String,
    },
    /// Disjoint union requires disjoint ranges (Def. 4 / 11b).
    RangesNotDisjoint { witness: Value },
    /// Linear sum requires disjoint carriers (Def. 12).
    CarriersNotDisjoint { witness: Value },
    /// A parameterized shape was bound with too few values, or evaluated
    /// without binding `$slot` at all.
    UnboundSlot { slot: usize },
    /// A bound value cannot inhabit its `$slot` (type mismatch, NULL, a
    /// value the instantiated constructor rejects).
    BadBinding {
        slot: usize,
        value: String,
        expected: String,
    },
    /// Substrate error (projection, schema lookup, …).
    Relation(RelationError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownAttr(a) => write!(f, "preference refers to unknown attribute `{a}`"),
            CoreError::OverlappingSets {
                constructor,
                witness,
            } => write!(
                f,
                "{constructor}: value sets must be disjoint, but {witness} occurs in both"
            ),
            CoreError::CyclicExplicit { on_cycle } => write!(
                f,
                "EXPLICIT: better-than graph must be acyclic, cycle through {on_cycle}"
            ),
            CoreError::EmptyInterval { low, up } => {
                write!(f, "BETWEEN: requires low <= up, got [{low}, {up}]")
            }
            CoreError::NotScorable { term } => write!(
                f,
                "rank(F): operand `{term}` is not a SCORE-family preference"
            ),
            CoreError::EmptyCombination { constructor } => {
                write!(f, "{constructor}: needs at least one operand")
            }
            CoreError::AttrSetMismatch {
                constructor,
                left,
                right,
            } => write!(
                f,
                "{constructor}: operands must share one attribute set, got {left} vs {right}"
            ),
            CoreError::RangesNotDisjoint { witness } => {
                write!(f, "disjoint union: operand ranges overlap on {witness}")
            }
            CoreError::CarriersNotDisjoint { witness } => {
                write!(f, "linear sum: carriers overlap on {witness}")
            }
            CoreError::UnboundSlot { slot } => {
                write!(f, "parameter slot ${slot} has no bound value")
            }
            CoreError::BadBinding {
                slot,
                value,
                expected,
            } => write!(f, "slot ${slot} cannot bind {value}: expected {expected}"),
            CoreError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        CoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pref_relation::attr;

    #[test]
    fn messages_name_the_constructor() {
        let e = CoreError::OverlappingSets {
            constructor: "POS/NEG",
            witness: Value::from("red"),
        };
        assert!(e.to_string().contains("POS/NEG"));
        assert!(e.to_string().contains("'red'"));
    }

    #[test]
    fn relation_errors_convert() {
        let e: CoreError = RelationError::UnknownAttr(attr("x")).into();
        assert!(matches!(e, CoreError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
