//! Property-based tests for the EXPLICIT constructor over random DAGs —
//! the only base preference whose order is user-supplied data, hence the
//! most likely to violate Def. 1 if mishandled.

use pref_core::base::{BasePreference, Explicit};
use pref_core::spo::check_spo_values;
use pref_relation::Value;
use proptest::prelude::*;

/// Random acyclic edge lists: vertices 0..n, edges only from lower to
/// higher id (worse → better), so cycles are impossible by construction.
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..n - 1).prop_flat_map(move |a| ((a + 1)..n).prop_map(move |b| (a, b))),
            0..12,
        );
        (Just(n), edges)
    })
}

fn vertex(i: usize) -> Value {
    Value::from(format!("v{i}"))
}

proptest! {
    #[test]
    fn random_dags_build_strict_partial_orders((n, edges) in arb_dag()) {
        let e = Explicit::new(
            edges.iter().map(|&(a, b)| (vertex(a), vertex(b))),
        )
        .expect("low-to-high edge lists are acyclic");
        // Domain: all vertices plus two outsiders.
        let mut dom: Vec<Value> = (0..n).map(vertex).collect();
        dom.push(Value::from("outsider1"));
        dom.push(Value::from("outsider2"));
        check_spo_values(&e, &dom).expect("EXPLICIT must be an SPO");

        // Fragment mode too.
        let f = Explicit::fragment(
            edges.iter().map(|&(a, b)| (vertex(a), vertex(b))),
        )
        .expect("acyclic");
        check_spo_values(&f, &dom).expect("EXPLICIT fragment must be an SPO");
    }

    #[test]
    fn closure_respects_reachability((n, edges) in arb_dag()) {
        // Pin all of 0..n as vertices: isolated ids would otherwise fall
        // outside the graph and be ranked below it by the completion rule.
        let e = Explicit::with_vertices(
            edges.iter().map(|&(a, b)| (vertex(a), vertex(b))),
            (0..n).map(vertex),
        )
        .expect("acyclic");
        // Reference reachability by BFS over the raw edges.
        let mut adj = vec![vec![]; n];
        for &(a, b) in &edges {
            adj[a].push(b);
        }
        let reaches = |from: usize, to: usize| -> bool {
            let mut seen = vec![false; n];
            let mut stack = vec![from];
            while let Some(x) = stack.pop() {
                for &y in &adj[x] {
                    if y == to {
                        return true;
                    }
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
            false
        };
        for a in 0..n {
            for b in 0..n {
                // Within the graph, better-than ⟺ reachability.
                prop_assert_eq!(
                    e.better(&vertex(a), &vertex(b)),
                    reaches(a, b),
                    "closure wrong for v{} < v{}", a, b
                );
            }
        }
    }

    #[test]
    fn levels_strictly_decrease_upward((n, edges) in arb_dag()) {
        let e = Explicit::with_vertices(
            edges.iter().map(|&(a, b)| (vertex(a), vertex(b))),
            (0..n).map(vertex),
        )
        .expect("acyclic");
        for a in 0..n {
            for b in 0..n {
                if e.better(&vertex(a), &vertex(b)) {
                    let la = e.level(&vertex(a)).expect("EXPLICIT has levels");
                    let lb = e.level(&vertex(b)).expect("EXPLICIT has levels");
                    prop_assert!(lb < la, "v{b} better than v{a} but levels {lb} !< {la}");
                }
            }
        }
        // Outside values sit exactly one level below the deepest vertex.
        let deepest = (0..n)
            .map(|i| e.level(&vertex(i)).expect("vertex level"))
            .max()
            .expect("n >= 2");
        prop_assert_eq!(e.level(&Value::from("elsewhere")), Some(deepest + 1));
    }

    #[test]
    fn cycles_are_always_rejected(n in 2usize..8, shift in 1usize..4) {
        // A single n-cycle (plus whatever chords) must be rejected.
        let edges: Vec<(Value, Value)> = (0..n)
            .map(|i| (vertex(i), vertex((i + shift.min(n - 1)) % n)))
            .collect();
        // shift coprime-ish cases produce cycles through v0 eventually;
        // guarantee one by closing the loop explicitly.
        let mut edges = edges;
        edges.push((vertex(n - 1), vertex(0)));
        edges.push((vertex(0), vertex(n - 1)));
        prop_assert!(Explicit::new(edges).is_err());
    }
}
