//! # pref-xpath — Preference XPath (§6.1 of the paper)
//!
//! "A query language to build personalized query engines in an
//! attribute-rich XML environment": standard XPath location steps
//! extended with *soft selections*. Hard predicates keep `[ … ]`; soft
//! selections are delimited `#[ … ]#`, with `and` as Pareto accumulation
//! and `prior to` as prioritised accumulation:
//!
//! ```text
//! Q1: /CARS/CAR #[(@fuel_economy)highest and (@horsepower)highest]#
//! Q2: /CARS/CAR #[(@color)in("black","white") prior to (@price)around 10000]#
//!               #[(@mileage)lowest]#
//! ```
//!
//! The XML data model and parser live in [`xml`]; path syntax in
//! [`path`]; evaluation — soft selections run BMO preference queries over
//! the node set of their location step — in [`eval`].
//!
//! ## Example
//!
//! ```
//! use pref_xpath::{parse_xml, PrefXPath};
//!
//! let doc = parse_xml(r#"<CARS>
//!   <CAR price="9000" mileage="60000"/>
//!   <CAR price="12000" mileage="20000"/>
//!   <CAR price="13000" mileage="30000"/>
//! </CARS>"#).unwrap();
//! let hits = PrefXPath::new(&doc)
//!     .query("/CARS/CAR #[(@price)lowest and (@mileage)lowest]#")
//!     .unwrap();
//! assert_eq!(hits.len(), 2); // the third car is dominated
//! ```

pub mod error;
pub mod eval;
pub mod path;
pub mod xml;

pub use error::XPathError;
pub use eval::{soft_to_term, PrefXPath};
pub use path::parse_path;
pub use xml::{parse_xml, Document, Element, NodeId};
