//! A small XML document model and parser — the stand-in for the TAMINO /
//! XALAN stores Preference XPath ran on (see DESIGN.md "Substitutions").
//!
//! Supports elements, attributes, text content, self-closing tags,
//! comments, an XML declaration and the five predefined entities. That is
//! exactly the attribute-rich subset the paper's queries navigate.

use std::collections::HashMap;

use crate::error::XPathError;

/// Index of a node in its document's arena.
pub type NodeId = usize;

/// One element node.
#[derive(Debug, Clone)]
pub struct Element {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<NodeId>,
    pub parent: Option<NodeId>,
    pub text: String,
}

impl Element {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An XML document: an arena of elements plus the root id.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Element>,
    root: NodeId,
}

impl Document {
    /// The root element id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The element with the given id.
    pub fn node(&self, id: NodeId) -> &Element {
        &self.nodes[id]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the document empty (never true for parsed documents)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All descendants of `id` including `id` itself, in document order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Reverse so the leftmost child is processed first.
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

fn decode_entities(s: &str, pos: usize) -> Result<String, XPathError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let map: HashMap<&str, char> = [
        ("amp", '&'),
        ("lt", '<'),
        ("gt", '>'),
        ("quot", '"'),
        ("apos", '\''),
    ]
    .into_iter()
    .collect();
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        let tail = &rest[i + 1..];
        let end = tail.find(';').ok_or_else(|| XPathError::Xml {
            pos,
            message: "unterminated entity".into(),
        })?;
        let name = &tail[..end];
        let c = map.get(name).ok_or_else(|| XPathError::Xml {
            pos,
            message: format!("unknown entity &{name};"),
        })?;
        out.push(*c);
        rest = &tail[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parse an XML string into a [`Document`].
pub fn parse_xml(input: &str) -> Result<Document, XPathError> {
    let mut p = XmlParser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_prolog()?;
    let mut nodes = Vec::new();
    let root = p.element(&mut nodes, None)?;
    p.skip_ws_and_comments()?;
    if p.pos != p.bytes.len() {
        return Err(XPathError::Xml {
            pos: p.pos,
            message: "content after the root element".into(),
        });
    }
    Ok(Document { nodes, root })
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError::Xml {
            pos: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XPathError> {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => return self.err("unterminated comment"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XPathError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with("<?xml") {
            match self.input[self.pos..].find("?>") {
                Some(i) => self.pos += i + 2,
                None => return self.err("unterminated XML declaration"),
            }
        }
        self.skip_ws_and_comments()
    }

    fn name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| {
            (b as char).is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':'
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn element(
        &mut self,
        nodes: &mut Vec<Element>,
        parent: Option<NodeId>,
    ) -> Result<NodeId, XPathError> {
        if self.bytes.get(self.pos) != Some(&b'<') {
            return self.err("expected `<`");
        }
        self.pos += 1;
        let name = self.name()?;

        let id = nodes.len();
        nodes.push(Element {
            name: name.clone(),
            attrs: Vec::new(),
            children: Vec::new(),
            parent,
            text: String::new(),
        });

        // Attributes.
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'/') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        return Ok(id);
                    }
                    return self.err("stray `/`");
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_pos = self.pos;
                    let key = self.name()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'=') {
                        return self.err("expected `=` after attribute name");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.bytes.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != quote) {
                        self.pos += 1;
                    }
                    if self.bytes.get(self.pos) != Some(&quote) {
                        return self.err("unterminated attribute value");
                    }
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    let value = decode_entities(raw, attr_pos)?;
                    nodes[id].attrs.push((key, value));
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }

        // Content: text, children, comments, close tag.
        loop {
            if self.input[self.pos..].starts_with("<!--") {
                self.skip_ws_and_comments()?;
                continue;
            }
            match self.bytes.get(self.pos) {
                None => return self.err(format!("unclosed element <{name}>")),
                Some(b'<') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    self.pos += 2;
                    let close = self.name()?;
                    if close != name {
                        return self.err(format!("mismatched close tag </{close}> for <{name}>"));
                    }
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b'>') {
                        return self.err("expected `>` in close tag");
                    }
                    self.pos += 1;
                    return Ok(id);
                }
                Some(b'<') => {
                    let child = self.element(nodes, Some(id))?;
                    nodes[id].children.push(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(|&b| b != b'<') {
                        self.pos += 1;
                    }
                    let text = decode_entities(self.input[start..self.pos].trim(), start)?;
                    if !text.is_empty() {
                        let node = &mut nodes[id];
                        if !node.text.is_empty() {
                            node.text.push(' ');
                        }
                        node.text.push_str(&text);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CARS: &str = r#"<?xml version="1.0"?>
<!-- test catalog -->
<CARS>
  <CAR fuel_economy="100" horsepower="3" color="red">frog</CAR>
  <CAR fuel_economy="50" horsepower="10" color="blue"/>
  <LOT>
    <CAR fuel_economy="70" horsepower="7" color="black &amp; white"/>
  </LOT>
</CARS>"#;

    #[test]
    fn parses_structure() {
        let doc = parse_xml(CARS).unwrap();
        let root = doc.node(doc.root());
        assert_eq!(root.name, "CARS");
        assert_eq!(root.children.len(), 3);
        assert_eq!(doc.len(), 5);
    }

    #[test]
    fn attributes_and_text() {
        let doc = parse_xml(CARS).unwrap();
        let first_car = doc.node(doc.node(doc.root()).children[0]);
        assert_eq!(first_car.attr("fuel_economy"), Some("100"));
        assert_eq!(first_car.attr("missing"), None);
        assert_eq!(first_car.text, "frog");
    }

    #[test]
    fn entities_decode() {
        let doc = parse_xml(CARS).unwrap();
        let lot = doc.node(doc.root());
        let nested = doc.node(doc.node(lot.children[2]).children[0]);
        assert_eq!(nested.attr("color"), Some("black & white"));
    }

    #[test]
    fn descendants_in_document_order() {
        let doc = parse_xml(CARS).unwrap();
        let all = doc.descendants_or_self(doc.root());
        let names: Vec<&str> = all.iter().map(|&i| doc.node(i).name.as_str()).collect();
        assert_eq!(names, vec!["CARS", "CAR", "CAR", "LOT", "CAR"]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a attr></a>").is_err());
        assert!(parse_xml("<a x=\"1\"></a><b/>").is_err());
        assert!(parse_xml("<a x=\"&bogus;\"/>").is_err());
    }

    #[test]
    fn self_closing_and_single_quotes() {
        let doc = parse_xml("<r><x a='1'/></r>").unwrap();
        let x = doc.node(doc.node(doc.root()).children[0]);
        assert_eq!(x.attr("a"), Some("1"));
    }
}
