//! Error type for Preference XPath.

use std::fmt;

use pref_core::CoreError;
use pref_query::QueryError;

/// Errors raised while parsing XML, parsing path expressions or
/// evaluating preference queries over node sets.
#[derive(Debug, Clone)]
pub enum XPathError {
    /// Malformed XML at a byte offset.
    Xml { pos: usize, message: String },
    /// Malformed path expression.
    Parse {
        pos: usize,
        expected: String,
        found: String,
    },
    /// Preference construction failed.
    Core(CoreError),
    /// BMO evaluation failed.
    Query(QueryError),
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Xml { pos, message } => write!(f, "XML error at byte {pos}: {message}"),
            XPathError::Parse {
                pos,
                expected,
                found,
            } => write!(
                f,
                "path parse error at token {pos}: expected {expected}, found {found}"
            ),
            XPathError::Core(e) => write!(f, "{e}"),
            XPathError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XPathError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XPathError::Core(e) => Some(e),
            XPathError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for XPathError {
    fn from(e: CoreError) -> Self {
        XPathError::Core(e)
    }
}

impl From<QueryError> for XPathError {
    fn from(e: QueryError) -> Self {
        XPathError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = XPathError::Xml {
            pos: 4,
            message: "unexpected `<`".into(),
        };
        assert!(e.to_string().contains("byte 4"));
    }
}
