//! Abstract syntax and parser for Preference XPath location paths.
//!
//! The paper upgrades the XPath production
//! `LocationStep: axis nodetest predicate*` to
//! `LocationStep: axis nodetest (predicate | preference)*`, delimiting
//! hard selections with `[ … ]` and soft selections with `#[ … ]#`.
//! Inside soft selections, `and` is Pareto accumulation and `prior to` is
//! prioritised accumulation, with the base preference vocabulary
//! `highest`, `lowest`, `around`, `between`, `in (…)` (+ `else`, `not in`).

use crate::error::XPathError;

/// A parsed location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    pub steps: Vec<Step>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub constraints: Vec<Constraint>,
}

/// Supported axes: `/` (child) and `//` (descendant-or-self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
}

/// Element name test.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    Name(String),
    Any,
}

/// A hard (`[...]`) or soft (`#[...]#`) selection.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    Hard(Predicate),
    Soft(SoftExpr),
}

/// Hard predicates over attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `@attr` — attribute existence.
    Exists(String),
    /// `@attr op literal`.
    Cmp(String, CmpOp, Lit),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Literals in path expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Num(f64),
    Str(String),
}

/// Soft-selection expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftExpr {
    Prior(Vec<SoftExpr>),
    Pareto(Vec<SoftExpr>),
    Atom(SoftAtom),
}

/// Base preference atoms: `(@attr) keyword …`.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftAtom {
    Highest(String),
    Lowest(String),
    Around(String, f64),
    Between(String, f64, f64),
    /// `(@a) in ("x","y")` → POS.
    In(String, Vec<Lit>),
    /// `(@a) not in (…)` → NEG.
    NotIn(String, Vec<Lit>),
    /// `(@a) in (…) else in (…)` → POS/POS.
    InElseIn(String, Vec<Lit>, Vec<Lit>),
    /// `(@a) in (…) else not in (…)` → POS/NEG.
    InElseNotIn(String, Vec<Lit>, Vec<Lit>),
}

impl SoftExpr {
    /// All attribute names referenced by the soft selection.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SoftExpr::Prior(children) | SoftExpr::Pareto(children) => {
                for c in children {
                    c.collect_attrs(out);
                }
            }
            SoftExpr::Atom(a) => out.push(match a {
                SoftAtom::Highest(n)
                | SoftAtom::Lowest(n)
                | SoftAtom::Around(n, _)
                | SoftAtom::Between(n, _, _)
                | SoftAtom::In(n, _)
                | SoftAtom::NotIn(n, _)
                | SoftAtom::InElseIn(n, _, _)
                | SoftAtom::InElseNotIn(n, _, _) => n,
            }),
        }
    }
}

// ---- lexer --------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Slash,
    DoubleSlash,
    Star,
    LBracket,
    RBracket,
    SoftOpen,  // #[
    SoftClose, // ]#
    LParen,
    RParen,
    Comma,
    At,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Num(f64),
    Str(String),
    Name(String),
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Name(n) => write!(f, "name `{n}`"),
            Tok::Num(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Eof => write!(f, "end of path"),
            other => write!(f, "{other:?}"),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>, XPathError> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] as char {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' => {
                if b.get(i + 1) == Some(&b'/') {
                    toks.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '#' => {
                if b.get(i + 1) == Some(&b'[') {
                    toks.push(Tok::SoftOpen);
                    i += 2;
                } else {
                    return Err(XPathError::Parse {
                        pos: i,
                        expected: "`#[`".into(),
                        found: "`#`".into(),
                    });
                }
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                if b.get(i + 1) == Some(&b'#') {
                    toks.push(Tok::SoftClose);
                    i += 2;
                } else {
                    toks.push(Tok::RBracket);
                    i += 1;
                }
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                toks.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(XPathError::Parse {
                        pos: i,
                        expected: "closing quote".into(),
                        found: "end of path".into(),
                    });
                }
                toks.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let v: f64 = input[start..i].parse().map_err(|_| XPathError::Parse {
                    pos: start,
                    expected: "number".into(),
                    found: input[start..i].to_string(),
                })?;
                toks.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                {
                    i += 1;
                }
                toks.push(Tok::Name(input[start..i].to_string()));
            }
            other => {
                return Err(XPathError::Parse {
                    pos: i,
                    expected: "path token".into(),
                    found: format!("`{other}`"),
                })
            }
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

// ---- parser ---------------------------------------------------------------

/// Parse a Preference XPath location path.
pub fn parse_path(input: &str) -> Result<LocationPath, XPathError> {
    let toks = lex(input)?;
    let mut p = PathParser { toks, pos: 0 };
    let path = p.path()?;
    if p.peek() != &Tok::Eof {
        return p.err("end of path");
    }
    Ok(path)
}

struct PathParser {
    toks: Vec<Tok>,
    pos: usize,
}

impl PathParser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, XPathError> {
        Err(XPathError::Parse {
            pos: self.pos,
            expected: expected.to_string(),
            found: self.peek().to_string(),
        })
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Name(n) if n.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), XPathError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            self.err(&format!("`{kw}`"))
        }
    }

    fn expect(&mut self, t: Tok, name: &str) -> Result<(), XPathError> {
        if self.peek() == &t {
            self.pos += 1;
            Ok(())
        } else {
            self.err(name)
        }
    }

    fn path(&mut self) -> Result<LocationPath, XPathError> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Tok::Slash => Axis::Child,
                Tok::DoubleSlash => Axis::Descendant,
                _ if steps.is_empty() => return self.err("`/` or `//`"),
                _ => break,
            };
            self.pos += 1;
            steps.push(self.step(axis)?);
        }
        Ok(LocationPath { steps })
    }

    fn step(&mut self, axis: Axis) -> Result<Step, XPathError> {
        let test = match self.bump() {
            Tok::Star => NodeTest::Any,
            Tok::Name(n) => NodeTest::Name(n),
            other => {
                return Err(XPathError::Parse {
                    pos: self.pos - 1,
                    expected: "element name or `*`".into(),
                    found: other.to_string(),
                })
            }
        };
        let mut constraints = Vec::new();
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.pos += 1;
                    let pred = self.pred_or()?;
                    self.expect(Tok::RBracket, "]")?;
                    constraints.push(Constraint::Hard(pred));
                }
                Tok::SoftOpen => {
                    self.pos += 1;
                    let soft = self.soft()?;
                    self.expect(Tok::SoftClose, "]#")?;
                    constraints.push(Constraint::Soft(soft));
                }
                _ => break,
            }
        }
        Ok(Step {
            axis,
            test,
            constraints,
        })
    }

    // ---- hard predicates --------------------------------------------------

    fn pred_or(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.pred_and()?;
        while self.keyword("or") {
            let right = self.pred_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Predicate, XPathError> {
        let mut left = self.pred_not()?;
        while self.keyword("and") {
            let right = self.pred_not()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_not(&mut self) -> Result<Predicate, XPathError> {
        if self.keyword("not") {
            // XPath writes not(expr); accept both not(...) and bare not.
            if self.peek() == &Tok::LParen {
                self.pos += 1;
                let inner = self.pred_or()?;
                self.expect(Tok::RParen, ")")?;
                return Ok(Predicate::Not(Box::new(inner)));
            }
            return Ok(Predicate::Not(Box::new(self.pred_not()?)));
        }
        self.pred_primary()
    }

    fn pred_primary(&mut self) -> Result<Predicate, XPathError> {
        if self.peek() == &Tok::LParen {
            self.pos += 1;
            let inner = self.pred_or()?;
            self.expect(Tok::RParen, ")")?;
            return Ok(inner);
        }
        self.expect(Tok::At, "@")?;
        let attr = match self.bump() {
            Tok::Name(n) => n,
            other => {
                return Err(XPathError::Parse {
                    pos: self.pos - 1,
                    expected: "attribute name".into(),
                    found: other.to_string(),
                })
            }
        };
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(Predicate::Exists(attr)),
        };
        self.pos += 1;
        let lit = self.lit()?;
        Ok(Predicate::Cmp(attr, op, lit))
    }

    fn lit(&mut self) -> Result<Lit, XPathError> {
        match self.bump() {
            Tok::Num(v) => Ok(Lit::Num(v)),
            Tok::Str(s) => Ok(Lit::Str(s)),
            other => Err(XPathError::Parse {
                pos: self.pos - 1,
                expected: "literal".into(),
                found: other.to_string(),
            }),
        }
    }

    // ---- soft selections ---------------------------------------------------

    fn soft(&mut self) -> Result<SoftExpr, XPathError> {
        let mut parts = vec![self.soft_pareto()?];
        while matches!(self.peek(), Tok::Name(n) if n.eq_ignore_ascii_case("prior")) {
            self.pos += 1;
            self.expect_keyword("to")?;
            parts.push(self.soft_pareto()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            SoftExpr::Prior(parts)
        })
    }

    fn soft_pareto(&mut self) -> Result<SoftExpr, XPathError> {
        let mut parts = vec![self.soft_atom()?];
        while self.keyword("and") {
            parts.push(self.soft_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            SoftExpr::Pareto(parts)
        })
    }

    fn soft_atom(&mut self) -> Result<SoftExpr, XPathError> {
        self.expect(Tok::LParen, "(")?;
        // Disambiguate `(@attr) keyword` from a parenthesised expression.
        if self.peek() != &Tok::At {
            let inner = self.soft()?;
            self.expect(Tok::RParen, ")")?;
            return Ok(inner);
        }
        self.pos += 1; // @
        let attr = match self.bump() {
            Tok::Name(n) => n,
            other => {
                return Err(XPathError::Parse {
                    pos: self.pos - 1,
                    expected: "attribute name".into(),
                    found: other.to_string(),
                })
            }
        };
        self.expect(Tok::RParen, ")")?;

        if self.keyword("highest") {
            return Ok(SoftExpr::Atom(SoftAtom::Highest(attr)));
        }
        if self.keyword("lowest") {
            return Ok(SoftExpr::Atom(SoftAtom::Lowest(attr)));
        }
        if self.keyword("around") {
            let v = match self.bump() {
                Tok::Num(v) => v,
                other => {
                    return Err(XPathError::Parse {
                        pos: self.pos - 1,
                        expected: "number after `around`".into(),
                        found: other.to_string(),
                    })
                }
            };
            return Ok(SoftExpr::Atom(SoftAtom::Around(attr, v)));
        }
        if self.keyword("between") {
            let lo = match self.bump() {
                Tok::Num(v) => v,
                other => {
                    return Err(XPathError::Parse {
                        pos: self.pos - 1,
                        expected: "number after `between`".into(),
                        found: other.to_string(),
                    })
                }
            };
            self.expect_keyword("and")?;
            let hi = match self.bump() {
                Tok::Num(v) => v,
                other => {
                    return Err(XPathError::Parse {
                        pos: self.pos - 1,
                        expected: "upper bound".into(),
                        found: other.to_string(),
                    })
                }
            };
            return Ok(SoftExpr::Atom(SoftAtom::Between(attr, lo, hi)));
        }
        if self.keyword("not") {
            self.expect_keyword("in")?;
            let values = self.lit_list()?;
            return Ok(SoftExpr::Atom(SoftAtom::NotIn(attr, values)));
        }
        if self.keyword("in") {
            let values = self.lit_list()?;
            if self.keyword("else") {
                if self.keyword("not") {
                    self.expect_keyword("in")?;
                    let neg = self.lit_list()?;
                    return Ok(SoftExpr::Atom(SoftAtom::InElseNotIn(attr, values, neg)));
                }
                self.expect_keyword("in")?;
                let pos2 = self.lit_list()?;
                return Ok(SoftExpr::Atom(SoftAtom::InElseIn(attr, values, pos2)));
            }
            return Ok(SoftExpr::Atom(SoftAtom::In(attr, values)));
        }
        self.err("preference keyword (highest, lowest, around, between, in, not in)")
    }

    fn lit_list(&mut self) -> Result<Vec<Lit>, XPathError> {
        self.expect(Tok::LParen, "(")?;
        let mut out = vec![self.lit()?];
        while self.peek() == &Tok::Comma {
            self.pos += 1;
            out.push(self.lit()?);
        }
        self.expect(Tok::RParen, ")")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        // Q1: /CARS/CAR #[(@fuel_economy)highest and (@horsepower)highest]#
        let p =
            parse_path("/CARS/CAR #[(@fuel_economy)highest and (@horsepower)highest]#").unwrap();
        assert_eq!(p.steps.len(), 2);
        let step = &p.steps[1];
        assert_eq!(step.test, NodeTest::Name("CAR".into()));
        assert_eq!(step.constraints.len(), 1);
        match &step.constraints[0] {
            Constraint::Soft(SoftExpr::Pareto(parts)) => assert_eq!(parts.len(), 2),
            other => panic!("expected Pareto soft selection, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_q2() {
        // Q2: /CARS/CAR #[(@color)in("black", "white")prior to(@price)around 10000]#
        //                #[(@mileage)lowest]#
        let p = parse_path(
            "/CARS/CAR #[(@color)in(\"black\", \"white\")prior to(@price)around 10000]# \
             #[(@mileage)lowest]#",
        )
        .unwrap();
        let step = &p.steps[1];
        assert_eq!(step.constraints.len(), 2);
        match &step.constraints[0] {
            Constraint::Soft(SoftExpr::Prior(parts)) => {
                assert!(matches!(parts[0], SoftExpr::Atom(SoftAtom::In(_, _))));
                assert!(matches!(parts[1], SoftExpr::Atom(SoftAtom::Around(_, _))));
            }
            other => panic!("expected Prior soft selection, got {other:?}"),
        }
    }

    #[test]
    fn hard_predicates() {
        let p = parse_path("//CAR[@price < 10000 and not(@sold)]").unwrap();
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        match &p.steps[0].constraints[0] {
            Constraint::Hard(Predicate::And(l, r)) => {
                assert!(matches!(**l, Predicate::Cmp(_, CmpOp::Lt, _)));
                assert!(matches!(**r, Predicate::Not(_)));
            }
            other => panic!("expected And predicate, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_mixed_axes() {
        let p = parse_path("/shop//offer/*").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        assert_eq!(p.steps[2].test, NodeTest::Any);
    }

    #[test]
    fn soft_attrs_are_collected() {
        let p = parse_path("/a/b #[(@x)highest and ((@y)lowest prior to (@x)around 5)]#").unwrap();
        match &p.steps[1].constraints[0] {
            Constraint::Soft(s) => assert_eq!(s.attributes(), vec!["x", "y"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_else_forms() {
        let p =
            parse_path("/a #[(@p)between 5 and 10 and (@c)in(\"x\") else not in(\"y\")]#").unwrap();
        match &p.steps[0].constraints[0] {
            Constraint::Soft(SoftExpr::Pareto(parts)) => {
                assert!(matches!(
                    parts[0],
                    SoftExpr::Atom(SoftAtom::Between(_, _, _))
                ));
                assert!(matches!(
                    parts[1],
                    SoftExpr::Atom(SoftAtom::InElseNotIn(_, _, _))
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_paths() {
        assert!(parse_path("CARS/CAR").is_err()); // must start with / or //
        assert!(parse_path("/CARS/CAR #[(@x)maximal]#").is_err());
        assert!(parse_path("/CARS/CAR #[(@x)highest]").is_err()); // missing #
        assert!(parse_path("/CARS/[@x]").is_err());
        assert!(parse_path("/CARS/CAR trailing").is_err());
    }
}
