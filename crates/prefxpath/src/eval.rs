//! Evaluation of Preference XPath location paths.
//!
//! Hard predicates filter the node set of a location step (exact-match
//! world); soft selections run a BMO preference query *on the node set of
//! that step* — the candidates become tuples over their referenced
//! attributes and the winners survive, exactly mirroring `σ[P](R)` with R
//! = the step's node set.
//!
//! XML attributes are untyped text; when a soft or hard constraint looks
//! at them numerically, values are coerced per attribute: if every
//! present value parses as a number the column is numeric, otherwise it
//! stays textual (and numeric preferences treat it as off-axis).

use pref_core::base::{Around, Between, Neg, Pos, PosNeg, PosPos, Score};
use pref_core::term::Pref;
use pref_query::sigma;
use pref_relation::{DataType, Relation, Schema, Value};

use crate::error::XPathError;
use crate::path::{
    parse_path, Axis, CmpOp, Constraint, Lit, LocationPath, NodeTest, Predicate, SoftAtom, SoftExpr,
};
use crate::xml::{Document, NodeId};

/// A Preference XPath engine over one document.
#[derive(Debug)]
pub struct PrefXPath<'a> {
    doc: &'a Document,
}

impl<'a> PrefXPath<'a> {
    pub fn new(doc: &'a Document) -> Self {
        PrefXPath { doc }
    }

    /// Evaluate a path string, returning matching node ids in document
    /// order.
    pub fn query(&self, path: &str) -> Result<Vec<NodeId>, XPathError> {
        self.eval(&parse_path(path)?)
    }

    /// Evaluate a parsed path.
    pub fn eval(&self, path: &LocationPath) -> Result<Vec<NodeId>, XPathError> {
        // The context starts at a virtual document root whose only child
        // is the root element.
        let mut current: Vec<NodeId> = vec![];
        for (i, step) in path.steps.iter().enumerate() {
            let mut candidates: Vec<NodeId> = Vec::new();
            if i == 0 {
                match step.axis {
                    Axis::Child => candidates.push(self.doc.root()),
                    Axis::Descendant => {
                        candidates.extend(self.doc.descendants_or_self(self.doc.root()))
                    }
                }
            } else {
                for &ctx in &current {
                    match step.axis {
                        Axis::Child => candidates.extend(self.doc.node(ctx).children.iter()),
                        Axis::Descendant => {
                            // descendant-or-self::node()/child::test —
                            // i.e. all strict descendants.
                            let mut d = self.doc.descendants_or_self(ctx);
                            d.retain(|&n| n != ctx);
                            candidates.extend(d);
                        }
                    }
                }
                // Document order + dedup (contexts may share subtrees).
                candidates.sort_unstable();
                candidates.dedup();
            }

            candidates.retain(|&n| match &step.test {
                NodeTest::Any => true,
                NodeTest::Name(name) => &self.doc.node(n).name == name,
            });

            for c in &step.constraints {
                match c {
                    Constraint::Hard(p) => {
                        candidates.retain(|&n| self.hard(n, p));
                    }
                    Constraint::Soft(s) => {
                        candidates = self.soft(&candidates, s)?;
                    }
                }
            }
            current = candidates;
        }
        Ok(current)
    }

    // ---- hard predicates ---------------------------------------------------

    fn hard(&self, node: NodeId, pred: &Predicate) -> bool {
        match pred {
            Predicate::Exists(a) => self.doc.node(node).attr(a).is_some(),
            Predicate::Cmp(a, op, lit) => {
                let Some(raw) = self.doc.node(node).attr(a) else {
                    return false;
                };
                let ord = match lit {
                    Lit::Num(v) => match raw.parse::<f64>() {
                        Ok(x) => x.partial_cmp(v),
                        Err(_) => None,
                    },
                    Lit::Str(s) => Some(raw.cmp(s.as_str())),
                };
                match (ord, op) {
                    (None, _) => false,
                    (Some(o), CmpOp::Eq) => o.is_eq(),
                    (Some(o), CmpOp::Ne) => o.is_ne(),
                    (Some(o), CmpOp::Lt) => o.is_lt(),
                    (Some(o), CmpOp::Le) => o.is_le(),
                    (Some(o), CmpOp::Gt) => o.is_gt(),
                    (Some(o), CmpOp::Ge) => o.is_ge(),
                }
            }
            Predicate::And(l, r) => self.hard(node, l) && self.hard(node, r),
            Predicate::Or(l, r) => self.hard(node, l) || self.hard(node, r),
            Predicate::Not(inner) => !self.hard(node, inner),
        }
    }

    // ---- soft selections -----------------------------------------------------

    fn soft(&self, candidates: &[NodeId], expr: &SoftExpr) -> Result<Vec<NodeId>, XPathError> {
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let attrs = expr.attributes();
        let relation = self.node_relation(candidates, &attrs)?;
        let pref = soft_to_term(expr)?;
        let winners = sigma(&pref, &relation)?;
        Ok(winners.into_iter().map(|i| candidates[i]).collect())
    }

    /// Materialise the candidate node set as a relation over the
    /// referenced attributes, inferring a numeric column type when every
    /// present value parses as a number.
    fn node_relation(&self, candidates: &[NodeId], attrs: &[&str]) -> Result<Relation, XPathError> {
        let mut types = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let mut numeric = true;
            for &n in candidates {
                if let Some(raw) = self.doc.node(n).attr(a) {
                    if raw.parse::<f64>().is_err() {
                        numeric = false;
                        break;
                    }
                }
            }
            types.push(if numeric {
                DataType::Float
            } else {
                DataType::Str
            });
        }
        let schema = Schema::new(attrs.iter().zip(&types).map(|(a, t)| (a.to_string(), *t)))
            .map_err(|e| XPathError::Core(e.into()))?;
        let mut r = Relation::empty(schema);
        for &n in candidates {
            let row: Vec<Value> = attrs
                .iter()
                .zip(&types)
                .map(|(a, t)| match self.doc.node(n).attr(a) {
                    None => Value::Null,
                    Some(raw) => match t {
                        DataType::Float => {
                            raw.parse::<f64>().map(Value::from).unwrap_or(Value::Null)
                        }
                        _ => Value::from(raw),
                    },
                })
                .collect();
            r.push_values(row).map_err(|e| XPathError::Core(e.into()))?;
        }
        Ok(r)
    }
}

fn lit_value(lit: &Lit) -> Value {
    match lit {
        Lit::Num(v) => Value::from(*v),
        Lit::Str(s) => Value::from(s.as_str()),
    }
}

/// Translate a soft selection into a preference term: `and` → `⊗`,
/// `prior to` → `&`, atoms → Def. 6/7 base constructors.
pub fn soft_to_term(expr: &SoftExpr) -> Result<Pref, XPathError> {
    Ok(match expr {
        SoftExpr::Prior(children) => Pref::prior_all(
            children
                .iter()
                .map(soft_to_term)
                .collect::<Result<Vec<_>, _>>()?,
        )
        .map_err(XPathError::Core)?,
        SoftExpr::Pareto(children) => Pref::pareto_all(
            children
                .iter()
                .map(soft_to_term)
                .collect::<Result<Vec<_>, _>>()?,
        )
        .map_err(XPathError::Core)?,
        SoftExpr::Atom(atom) => match atom {
            // Unlike the pure HIGHEST/LOWEST chains (where an off-axis
            // value is *incomparable*, Def. 7c), Preference XPath wants
            // nodes with a missing or unparsable attribute to lose
            // against every scored node: SCORE's Def. 7d semantics send
            // them to -∞ (mutually unranked), which is exactly that —
            // and it holds on every evaluation backend, instead of
            // depending on which algorithm the optimizer picks.
            SoftAtom::Highest(a) => Pref::base(
                a.as_str(),
                Score::new("xpath-highest", |v: &Value| v.ordinal()),
            ),
            SoftAtom::Lowest(a) => Pref::base(
                a.as_str(),
                Score::new("xpath-lowest", |v: &Value| v.ordinal().map(|o| -o)),
            ),
            SoftAtom::Around(a, z) => Pref::base(a.as_str(), Around::new(*z)),
            SoftAtom::Between(a, lo, hi) => Pref::base(
                a.as_str(),
                Between::new(*lo, *hi).map_err(XPathError::Core)?,
            ),
            SoftAtom::In(a, vs) => Pref::base(a.as_str(), Pos::new(vs.iter().map(lit_value))),
            SoftAtom::NotIn(a, vs) => Pref::base(a.as_str(), Neg::new(vs.iter().map(lit_value))),
            SoftAtom::InElseIn(a, p1, p2) => Pref::base(
                a.as_str(),
                PosPos::new(p1.iter().map(lit_value), p2.iter().map(lit_value))
                    .map_err(XPathError::Core)?,
            ),
            SoftAtom::InElseNotIn(a, p, n) => Pref::base(
                a.as_str(),
                PosNeg::new(p.iter().map(lit_value), n.iter().map(lit_value))
                    .map_err(XPathError::Core)?,
            ),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::parse_xml;

    fn cars_doc() -> Document {
        parse_xml(
            r#"<CARS>
  <CAR fuel_economy="100" horsepower="3" color="red" price="9000" mileage="60000"/>
  <CAR fuel_economy="50" horsepower="3" color="black" price="10500" mileage="30000"/>
  <CAR fuel_economy="50" horsepower="10" color="white" price="15000" mileage="30000"/>
  <CAR fuel_economy="100" horsepower="10" color="black" price="11000" mileage="45000"/>
  <VAN fuel_economy="30" horsepower="8" color="black" price="9000" mileage="80000"/>
</CARS>"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_q1_skyline() {
        // Q1: highest fuel economy ⊗ highest horsepower — only the car
        // maximal in both survives (the Example 9 "turtle" effect).
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        let hits = engine
            .query("/CARS/CAR #[(@fuel_economy)highest and (@horsepower)highest]#")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.node(hits[0]).attr("fuel_economy"), Some("100"));
        assert_eq!(doc.node(hits[0]).attr("horsepower"), Some("10"));
    }

    #[test]
    fn paper_q2_prioritised_then_second_soft_step() {
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        let hits = engine
            .query(
                "/CARS/CAR #[(@color)in(\"black\", \"white\") prior to (@price)around 10000]# \
                 #[(@mileage)lowest]#",
            )
            .unwrap();
        // Color favorites: black/white cars (3). Among equal colors the
        // price preference refines: black 10500 beats black 11000. Then
        // lowest mileage keeps the 30000-mile cars.
        assert_eq!(hits.len(), 2);
        for h in &hits {
            assert_eq!(doc.node(*h).attr("mileage"), Some("30000"));
        }
    }

    #[test]
    fn node_test_filters_names() {
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        assert_eq!(engine.query("/CARS/CAR").unwrap().len(), 4);
        assert_eq!(engine.query("/CARS/*").unwrap().len(), 5);
        assert_eq!(engine.query("//VAN").unwrap().len(), 1);
        assert!(engine.query("/WRONG").unwrap().is_empty());
    }

    #[test]
    fn hard_and_soft_combine() {
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        let hits = engine
            .query("/CARS/CAR[@price <= 11000] #[(@horsepower)highest]#")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.node(hits[0]).attr("price"), Some("11000"));
    }

    #[test]
    fn missing_attributes_become_null_and_lose() {
        let doc = parse_xml(r#"<R><X p="5"/><X p="7"/><X/></R>"#).unwrap();
        let engine = PrefXPath::new(&doc);
        let hits = engine.query("/R/X #[(@p)highest]#").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.node(hits[0]).attr("p"), Some("7"));
    }

    #[test]
    fn soft_on_empty_node_set_is_empty() {
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        assert!(engine
            .query("/CARS/TRUCK #[(@price)lowest]#")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn textual_attributes_use_pos_neg() {
        let doc = cars_doc();
        let engine = PrefXPath::new(&doc);
        let hits = engine
            .query("/CARS/CAR #[(@color)in(\"red\") else not in(\"black\")]#")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.node(hits[0]).attr("color"), Some("red"));
    }

    #[test]
    fn descendant_axis_collects_across_levels() {
        let doc = parse_xml(r#"<shop><lot><CAR price="5"/></lot><CAR price="3"/></shop>"#).unwrap();
        let engine = PrefXPath::new(&doc);
        let hits = engine.query("//CAR #[(@price)lowest]#").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.node(hits[0]).attr("price"), Some("3"));
    }
}
