//! Robustness properties for the XML parser and path engine.

use pref_xpath::{parse_path, parse_xml, PrefXPath};
use proptest::prelude::*;

fn arb_doc() -> impl Strategy<Value = String> {
    // A random flat catalog document with numeric attributes.
    prop::collection::vec((0i64..100, 0i64..100), 1..20).prop_map(|rows| {
        let mut s = String::from("<R>");
        for (p, m) in rows {
            s.push_str(&format!("<X p=\"{p}\" m=\"{m}\"/>"));
        }
        s.push_str("</R>");
        s
    })
}

proptest! {
    #[test]
    fn xml_parser_never_panics(input in "[ -~]{0,160}") {
        let _ = parse_xml(&input);
    }

    #[test]
    fn path_parser_never_panics(input in "[ -~]{0,120}") {
        let _ = parse_path(&input);
    }

    #[test]
    fn soft_selection_results_are_maximal(doc_text in arb_doc()) {
        let doc = parse_xml(&doc_text).expect("generated XML is well-formed");
        let engine = PrefXPath::new(&doc);
        let hits = engine
            .query("/R/X #[(@p)lowest and (@m)lowest]#")
            .expect("valid path");
        // BMO invariants at the XPath level: nonempty, and no hit is
        // dominated by any candidate on both attributes.
        prop_assert!(!hits.is_empty());
        let all = engine.query("/R/X").expect("valid path");
        let val = |id: usize, name: &str| -> i64 {
            doc.node(id).attr(name).unwrap().parse().unwrap()
        };
        for &h in &hits {
            for &c in &all {
                let dominates = val(c, "p") <= val(h, "p")
                    && val(c, "m") <= val(h, "m")
                    && (val(c, "p") < val(h, "p") || val(c, "m") < val(h, "m"));
                prop_assert!(!dominates, "hit {h} dominated by {c}");
            }
        }
    }

    #[test]
    fn hard_filters_commute_with_soft_selections(doc_text in arb_doc()) {
        // [@p <= 50] then lowest(m) ≡ filtering candidates first by hand.
        let doc = parse_xml(&doc_text).expect("generated XML is well-formed");
        let engine = PrefXPath::new(&doc);
        let combined = engine
            .query("/R/X[@p <= 50] #[(@m)lowest]#")
            .expect("valid path");
        let all = engine.query("/R/X").expect("valid path");
        let val = |id: usize, name: &str| -> i64 {
            doc.node(id).attr(name).unwrap().parse().unwrap()
        };
        let survivors: Vec<usize> = all.into_iter().filter(|&n| val(n, "p") <= 50).collect();
        let best_m = survivors.iter().map(|&n| val(n, "m")).min();
        let expect: Vec<usize> = survivors
            .into_iter()
            .filter(|&n| Some(val(n, "m")) == best_m)
            .collect();
        prop_assert_eq!(combined, expect);
    }
}
